"""Unit tests for the ``repro.obs`` telemetry layer.

Covers the clock indirection, the metrics registry, tracer record
formats (including crash-recovery and merge), the strict report loader,
and the ``python -m repro.obs`` CLI contract the CI trace gate rides.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.obs import (
    NULL_TRACER,
    Clock,
    FrozenClock,
    MetricsRegistry,
    NullTracer,
    Tracer,
    default_clock,
    progress_listener,
    set_default_clock,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.report import TraceError, diff, load_trace, summarize
from repro.obs.trace import STATUS_ABORTED


@pytest.fixture()
def frozen_clock():
    """Install a FrozenClock process-wide for the test, then restore."""
    clock = FrozenClock(start=0.0, tick=1.0)
    previous = set_default_clock(clock)
    try:
        yield clock
    finally:
        set_default_clock(previous)


# ----------------------------------------------------------------------
class TestClock:
    def test_frozen_clock_advances_on_every_read(self):
        clock = FrozenClock(start=5.0, tick=0.5)
        assert clock.monotonic() == 5.0
        assert clock.monotonic() == 5.5
        assert clock.wall() == 6.0  # wall shares the same stream

    def test_default_clock_swap_is_reversible(self):
        frozen = FrozenClock()
        previous = set_default_clock(frozen)
        try:
            assert default_clock() is frozen
        finally:
            assert set_default_clock(previous) is frozen
        assert default_clock() is previous

    def test_real_clock_monotonic_is_nondecreasing(self):
        clock = Clock()
        a = clock.monotonic()
        b = clock.monotonic()
        assert b >= a


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("rows").add(3)
        registry.counter("rows").add()
        registry.gauge("rss").set_max(10.0)
        registry.gauge("rss").set_max(4.0)  # lower values never win
        registry.histogram("lat").observe(2.0)
        registry.histogram("lat").observe(8.0)

        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"rows": 4}
        assert snapshot["gauges"] == {"rss": 10.0}
        assert snapshot["histograms"]["lat"] == {
            "count": 2,
            "total": 10.0,
            "min": 2.0,
            "max": 8.0,
        }
        # JSON-ready by contract.
        json.dumps(snapshot)

    def test_update_peak_rss_records_a_positive_gauge(self):
        registry = MetricsRegistry()
        registry.update_peak_rss()
        assert registry.snapshot()["gauges"]["process.peak_rss_kb"] > 0

    def test_reset_drops_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("rows").add(1)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_statuses(self, tmp_path, frozen_clock):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("campaign", visits=10):
            with tracer.span("plan", block=0):
                pass
            with pytest.raises(RuntimeError):
                with tracer.span("execute", block=0):
                    raise RuntimeError("boom")
        tracer.close()

        trace = load_trace(path)
        assert [span.name for span in trace.roots] == ["campaign"]
        campaign = trace.roots[0]
        assert [child.name for child in campaign.children] == ["plan", "execute"]
        assert campaign.status == "ok"
        assert campaign.attrs == {"visits": 10}
        failed = campaign.children[1]
        assert failed.status == "error"
        assert "boom" in failed.error
        # FrozenClock ticks make every duration strictly positive.
        assert all(span.duration > 0 for span in trace.spans.values())

    def test_out_of_order_end_is_rejected(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        outer = tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        with pytest.raises(ValueError, match="out of order"):
            tracer._end_span(outer.id, "ok")
        tracer.close()

    def test_events_feed_both_stream_and_listeners(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        seen = []
        tracer.add_listener(lambda name, attrs: seen.append((name, attrs)))
        with tracer.span("campaign"):
            tracer.event("batch", index=3)
        tracer.close()

        assert seen == [("batch", {"index": 3})]
        trace = load_trace(tmp_path / "trace.jsonl")
        assert trace.events[0]["name"] == "batch"
        assert trace.events[0]["parent"] == trace.roots[0].id

    def test_close_aborts_open_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        tracer.span("campaign").__enter__()
        tracer.span("shard.execute").__enter__()
        tracer.close()

        trace = load_trace(path)
        assert all(span.status == STATUS_ABORTED for span in trace.spans.values())

    def test_reopening_a_killed_stream_closes_orphans_and_advances_ids(
        self, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        # A killed run's stream: one closed span, one left open.
        path.write_text(
            '{"t": "B", "id": 1, "parent": 0, "name": "campaign", "ts": 1.0}\n'
            '{"t": "B", "id": 2, "parent": 1, "name": "plan", "ts": 2.0}\n'
            '{"t": "E", "id": 2, "ts": 3.0, "status": "ok"}\n'
        )
        tracer = Tracer(path)
        with tracer.span("campaign"):
            pass
        tracer.close()

        trace = load_trace(path)
        assert trace.spans[1].status == STATUS_ABORTED  # prior-run orphan
        assert trace.spans[2].status == "ok"
        assert len(trace.spans) == 3  # the new span took a fresh id

    def test_record_metrics_snapshots_into_the_stream(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("store.rows_ingested").add(7)
        tracer = Tracer(tmp_path / "trace.jsonl")
        tracer.record_metrics(registry=registry, scope="shard-000")
        tracer.close()

        trace = load_trace(tmp_path / "trace.jsonl")
        record = trace.metrics[0]
        assert record["scope"] == "shard-000"
        assert record["metrics"]["counters"]["store.rows_ingested"] == 7

    def test_records_are_written_with_sorted_keys(self, tmp_path, frozen_clock):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("campaign", visits=1):
            pass
        tracer.close()
        for line in path.read_text().splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)


class TestAbsorbFile:
    def test_absorb_preserves_parentage_under_a_new_parent(self, tmp_path):
        child_path = tmp_path / "worker" / "trace.jsonl"
        child = Tracer(child_path)
        with child.span("shard.execute", shard=0):
            with child.span("plan", block=0):
                pass
            child.event("batch", index=0)
        child.close()

        parent = Tracer(tmp_path / "campaign.jsonl")
        with parent.span("shard", shard=0) as span:
            absorbed = parent.absorb_file(child_path, parent_id=span.id)
        parent.close()
        assert absorbed == 5  # 2 B + 2 E + 1 I

        trace = load_trace(tmp_path / "campaign.jsonl")
        shard = trace.roots[0]
        assert [c.name for c in shard.children] == ["shard.execute"]
        assert [c.name for c in shard.children[0].children] == ["plan"]
        assert trace.events[0]["parent"] == shard.children[0].id

    def test_absorb_closes_killed_workers_open_spans(self, tmp_path):
        child_path = tmp_path / "trace.jsonl"
        # Killed mid-span: open B plus a half-written trailing record.
        child_path.write_text(
            '{"t": "B", "id": 1, "parent": 0, "name": "shard.execute", "ts": 1.0}\n'
            '{"t": "B", "id": 2, "parent": 1, "name": "execute", "ts": 2.0}\n'
            '{"t": "E", "id": 2'  # no closing brace: killed mid-write
        )
        parent = Tracer(tmp_path / "campaign.jsonl")
        with parent.span("shard.aborted", shard=1) as span:
            parent.absorb_file(child_path, parent_id=span.id)
        parent.close()

        trace = load_trace(tmp_path / "campaign.jsonl")
        wrapper = trace.roots[0]
        assert wrapper.status == "ok"
        execute = wrapper.children[0]
        assert execute.name == "shard.execute"
        assert execute.status == STATUS_ABORTED
        assert execute.children[0].status == STATUS_ABORTED

    def test_absorb_rejects_malformed_mid_stream_lines(self, tmp_path):
        bad = tmp_path / "trace.jsonl"
        bad.write_text("not json at all\n" '{"t": "B", "id": 1, "ts": 1.0}\n')
        parent = Tracer(tmp_path / "campaign.jsonl")
        with pytest.raises(ValueError, match="malformed"):
            parent.absorb_file(bad)
        parent.close()

    def test_absorb_missing_file_is_a_noop(self, tmp_path):
        parent = Tracer(tmp_path / "campaign.jsonl")
        assert parent.absorb_file(tmp_path / "nope.jsonl") == 0
        parent.close()


class TestNullTracer:
    def test_null_tracer_is_inert_but_dispatches_listeners(self):
        tracer = NullTracer()
        seen = []
        tracer.add_listener(lambda name, attrs: seen.append((name, attrs)))
        with tracer.span("campaign", visits=5) as span:
            tracer.event("batch", index=1)
        assert span.id == 0
        assert seen == [("batch", {"index": 1})]
        assert tracer.absorb_file(Path("nowhere.jsonl")) == 0
        tracer.record_metrics()
        tracer.close()

    def test_module_singleton_is_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        assert Tracer.enabled

    def test_progress_listener_rebuilds_the_dataclass(self):
        @dataclasses.dataclass
        class Tick:
            index: int
            total: int

        seen = []
        listener = progress_listener(seen.append, "batch", Tick)
        listener("batch", {"index": 1, "total": 4})
        listener("shard", {"anything": "else"})  # filtered by name
        assert seen == [Tick(index=1, total=4)]


# ----------------------------------------------------------------------
class TestReportLoader:
    def write(self, tmp_path, text):
        path = tmp_path / "trace.jsonl"
        path.write_text(text)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="no such trace"):
            load_trace(tmp_path / "absent.jsonl")

    def test_malformed_json(self, tmp_path):
        path = self.write(tmp_path, "{broken\n")
        with pytest.raises(TraceError, match="malformed JSON"):
            load_trace(path)

    def test_duplicate_span_id(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"t": "B", "id": 1, "ts": 1.0, "name": "a"}\n'
            '{"t": "B", "id": 1, "ts": 2.0, "name": "b"}\n',
        )
        with pytest.raises(TraceError, match="duplicate span id"):
            load_trace(path)

    def test_end_for_unknown_span(self, tmp_path):
        path = self.write(tmp_path, '{"t": "E", "id": 9, "ts": 1.0}\n')
        with pytest.raises(TraceError, match="unknown span"):
            load_trace(path)

    def test_unclosed_span(self, tmp_path):
        path = self.write(tmp_path, '{"t": "B", "id": 1, "ts": 1.0, "name": "a"}\n')
        with pytest.raises(TraceError, match="unclosed"):
            load_trace(path)

    def test_end_before_start(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"t": "B", "id": 1, "ts": 5.0, "name": "a"}\n'
            '{"t": "E", "id": 1, "ts": 1.0, "status": "ok"}\n',
        )
        with pytest.raises(TraceError, match="ends before it starts"):
            load_trace(path)


class TestSummarize:
    def build_trace(self, path):
        """A deterministic two-shard campaign trace via the obs API alone."""
        tracer = Tracer(path, clock=FrozenClock())
        with tracer.span("campaign", visits=100, shards=2):
            for shard in range(2):
                with tracer.span("shard", shard=shard):
                    with tracer.span("shard.execute", shard=shard):
                        with tracer.span("plan", block=shard):
                            pass
                        with tracer.span("execute", block=shard):
                            pass
                tracer.event("shard", shard_index=shard)
            with tracer.span("epoch", epoch=0):
                pass
        registry = MetricsRegistry()
        registry.counter("store.rows_ingested").add(100)
        registry.gauge("process.peak_rss_kb").set_max(12345.0)
        tracer._write(  # shard-scope snapshot without the live-RSS gauge
            {
                "t": "M",
                "ts": 0.0,
                "scope": "shard-000",
                "metrics": {"gauges": {"process.peak_rss_kb": 9999.0}},
            }
        )
        tracer._write(
            {
                "t": "M",
                "ts": 0.0,
                "scope": "campaign",
                "metrics": registry.snapshot(),
            }
        )
        tracer.close()
        return load_trace(path)

    def test_summary_shape(self, tmp_path):
        summary = summarize(self.build_trace(tmp_path / "trace.jsonl"))
        assert summary["totals"]["spans"] == 10
        assert summary["totals"]["events"] == 2
        assert summary["totals"]["aborted_spans"] == 0
        assert summary["phases"]["plan"]["count"] == 2
        assert summary["phases"]["shard.execute"]["count"] == 2
        assert [s["shard"] for s in summary["shards"]] == [0, 1]
        # Critical path descends the longest chain under each shard span
        # (FrozenClock ties break toward the earlier span id).
        assert [step["name"] for step in summary["shards"][0]["critical_path"]] == [
            "shard.execute",
            "plan",
        ]
        assert summary["shards"][0]["peak_rss_kb"] == 9999.0
        assert summary["epochs"] == [
            {"epoch": 0, "duration_s": 1.0, "status": "ok"}
        ]
        assert summary["metrics"]["counters"]["store.rows_ingested"] == 100

    def test_diff_reports_phase_deltas(self, tmp_path):
        before = self.build_trace(tmp_path / "before.jsonl")
        after = self.build_trace(tmp_path / "after.jsonl")
        result = diff(before, after)
        plan = result["phases"]["plan"]
        assert plan["before_s"] == plan["after_s"]
        assert plan["delta_s"] == 0.0
        assert plan["ratio"] == 1.0


# ----------------------------------------------------------------------
class TestCli:
    def good_trace(self, tmp_path, name="trace.jsonl"):
        path = tmp_path / name
        tracer = Tracer(path, clock=FrozenClock())
        with tracer.span("campaign", visits=1):
            with tracer.span("plan", block=0):
                pass
        tracer.close()
        return path

    def test_summarize_json_exit_zero(self, tmp_path, capsys):
        path = self.good_trace(tmp_path)
        assert obs_main(["summarize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["spans"] == 2
        assert "plan" in payload["phases"]

    def test_summarize_renders_text_by_default(self, tmp_path, capsys):
        path = self.good_trace(tmp_path)
        assert obs_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace: 2 spans")
        assert "plan" in out

    def test_malformed_trace_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": "B", "id": 1, "ts": 1.0, "name": "open"}\n')
        assert obs_main(["summarize", str(bad)]) == 1
        assert "unclosed" in capsys.readouterr().err

    def test_diff_command(self, tmp_path, capsys):
        a = self.good_trace(tmp_path, "a.jsonl")
        b = self.good_trace(tmp_path, "b.jsonl")
        assert obs_main(["diff", str(a), str(b)]) == 0
        assert "plan" in capsys.readouterr().out

    def test_out_writes_payload_atomically(self, tmp_path, capsys):
        path = self.good_trace(tmp_path)
        out = tmp_path / "summary.json"
        assert obs_main(["summarize", str(path), "--json", "--out", str(out)]) == 0
        written = json.loads(out.read_text())
        assert written == json.loads(capsys.readouterr().out)

    def test_usage_error_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            obs_main(["no-such-command"])
        assert excinfo.value.code == 2

    def test_frozen_clock_makes_summaries_byte_identical(self, tmp_path, capsys):
        # Two identical runs under a FrozenClock: the trace streams and the
        # CLI's --json output must match byte for byte.
        a = self.good_trace(tmp_path, "a.jsonl")
        b = self.good_trace(tmp_path, "b.jsonl")
        assert a.read_bytes() == b.read_bytes()
        assert obs_main(["summarize", str(a), "--json"]) == 0
        first = capsys.readouterr().out
        assert obs_main(["summarize", str(b), "--json"]) == 0
        assert capsys.readouterr().out == first
