"""Tests for link-quality models and the failure taxonomy."""

import numpy as np
import pytest

from repro.netsim.errors import FailureKind, FailureStage, FetchOutcome
from repro.netsim.latency import LinkQuality
from repro.web.resources import ContentType
from repro.web.server import HTTPResponse
from repro.web.url import URL


class TestLinkQuality:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkQuality(rtt_ms=-1)
        with pytest.raises(ValueError):
            LinkQuality(rtt_ms=10, loss_rate=1.0)
        with pytest.raises(ValueError):
            LinkQuality(rtt_ms=10, bandwidth_kbps=0)

    def test_sample_rtt_at_least_base(self):
        rng = np.random.default_rng(0)
        link = LinkQuality(rtt_ms=50, jitter_ms=10)
        samples = [link.sample_rtt_ms(rng) for _ in range(200)]
        assert all(s >= 50 for s in samples)
        assert max(s for s in samples) > 50

    def test_zero_jitter_gives_constant_rtt(self):
        rng = np.random.default_rng(0)
        link = LinkQuality(rtt_ms=30, jitter_ms=0)
        assert {link.sample_rtt_ms(rng) for _ in range(10)} == {30.0}

    def test_transfer_time_scales_with_size(self):
        link = LinkQuality.broadband()
        assert link.transfer_time_ms(2000) == pytest.approx(2 * link.transfer_time_ms(1000))

    def test_packet_loss_rate_respected(self):
        rng = np.random.default_rng(1)
        lossy = LinkQuality(rtt_ms=10, loss_rate=0.5)
        losses = sum(lossy.packet_lost(rng) for _ in range(2000))
        assert 800 < losses < 1200

    def test_lossless_link_never_loses(self):
        rng = np.random.default_rng(1)
        link = LinkQuality(rtt_ms=10, loss_rate=0.0)
        assert not any(link.packet_lost(rng) for _ in range(100))

    def test_presets_are_ordered_by_quality(self):
        assert LinkQuality.local().rtt_ms < LinkQuality.campus().rtt_ms
        assert LinkQuality.campus().rtt_ms < LinkQuality.broadband().rtt_ms
        assert LinkQuality.broadband().rtt_ms < LinkQuality.mobile().rtt_ms
        assert LinkQuality.mobile().loss_rate < LinkQuality.unreliable().loss_rate


class TestFetchOutcome:
    def test_success_factory(self):
        response = HTTPResponse(200, ContentType.IMAGE, 500)
        outcome = FetchOutcome.success(URL.parse("http://e.com/x.png"), response, 42.0, "1.2.3.4")
        assert outcome.ok
        assert outcome.succeeded_with_content
        assert outcome.failure_kind is FailureKind.OK
        assert outcome.stage_failed is FailureStage.NONE
        assert outcome.size_bytes == 500
        assert not outcome.looks_like_block_page

    def test_failure_factory(self):
        outcome = FetchOutcome.failure(
            URL.parse("http://e.com/x"), FailureStage.DNS, FailureKind.DNS_NXDOMAIN, 30.0
        )
        assert not outcome.ok
        assert not outcome.succeeded_with_content
        assert outcome.failure_kind.is_failure

    def test_block_page_detection(self):
        response = HTTPResponse.block_page()
        outcome = FetchOutcome.failure(
            URL.parse("http://e.com/x"),
            FailureStage.CONTENT,
            FailureKind.BLOCK_PAGE,
            10.0,
            status=200,
            response=response,
        )
        assert outcome.looks_like_block_page
        assert not outcome.succeeded_with_content

    def test_ok_kind_is_not_failure(self):
        assert not FailureKind.OK.is_failure
        assert FailureKind.TCP_RESET.is_failure
