"""Tests for the individual DNS / TCP / HTTP stage models."""

import numpy as np
import pytest

from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.netsim.dns import DNSAction, DNSResolver, INJECTED_SINKHOLE_IP
from repro.netsim.http import HTTPAction, HTTPExchangeModel, THROTTLE_FACTOR
from repro.netsim.latency import LinkQuality
from repro.netsim.tcp import TCPAction, TCPConnectionModel
from repro.web.resources import ContentType, Resource
from repro.web.server import WebServer, WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


def build_universe():
    universe = WebUniverse()
    site = Site("target.org")
    site.add(Resource(URL.parse("http://target.org/favicon.ico"), ContentType.IMAGE, 500))
    universe.add_site(site)
    return universe


def censor(mechanism, domain="target.org"):
    return Censor("test", BlacklistPolicy.for_domains([domain]), mechanism)


class TestDNSResolver:
    def test_resolves_known_host(self):
        universe = build_universe()
        resolver = DNSResolver(universe)
        result = resolver.resolve("target.org")
        assert result.resolved
        assert result.ip_address == universe.ip_for_host("target.org")

    def test_unknown_host_is_nxdomain(self):
        resolver = DNSResolver(build_universe())
        result = resolver.resolve("missing.net")
        assert result.action is DNSAction.NXDOMAIN
        assert not result.resolved

    def test_extra_records(self):
        resolver = DNSResolver(build_universe())
        resolver.add_record("extra.net", "5.6.7.8")
        assert resolver.authoritative_ip("extra.net") == "5.6.7.8"
        assert resolver.resolve("extra.net").ip_address == "5.6.7.8"

    def test_nxdomain_censor_wins(self):
        resolver = DNSResolver(build_universe())
        result = resolver.resolve("target.org", [censor(FilteringMechanism.DNS_NXDOMAIN)])
        assert result.action is DNSAction.NXDOMAIN

    def test_injection_censor_returns_sinkhole(self):
        resolver = DNSResolver(build_universe())
        result = resolver.resolve("target.org", [censor(FilteringMechanism.DNS_INJECTION)])
        assert result.action is DNSAction.INJECT
        assert result.ip_address == INJECTED_SINKHOLE_IP

    def test_uninterested_censor_passes(self):
        resolver = DNSResolver(build_universe())
        result = resolver.resolve(
            "target.org", [censor(FilteringMechanism.DNS_NXDOMAIN, domain="other.org")]
        )
        assert result.resolved


class TestTCPConnectionModel:
    def test_clean_connect(self):
        model = TCPConnectionModel()
        result = model.connect("1.1.1.1", "target.org", LinkQuality(rtt_ms=20, jitter_ms=0, loss_rate=0),
                               np.random.default_rng(0))
        assert result.connected
        assert result.elapsed_ms >= 20

    def test_ip_drop_times_out(self):
        model = TCPConnectionModel(timeout_ms=5000)
        result = model.connect(
            "1.1.1.1", "target.org", LinkQuality.broadband(), np.random.default_rng(0),
            [censor(FilteringMechanism.IP_DROP)],
        )
        assert not result.connected
        assert result.action is TCPAction.DROP
        assert result.elapsed_ms == 5000

    def test_rst_is_fast(self):
        model = TCPConnectionModel()
        result = model.connect(
            "1.1.1.1", "target.org", LinkQuality.broadband(), np.random.default_rng(0),
            [censor(FilteringMechanism.TCP_RST)],
        )
        assert not result.connected
        assert result.action is TCPAction.RESET
        assert result.elapsed_ms < 1000

    def test_lossy_link_sometimes_fails(self):
        model = TCPConnectionModel()
        rng = np.random.default_rng(3)
        link = LinkQuality(rtt_ms=50, jitter_ms=5, loss_rate=0.4)
        results = [model.connect("1.1.1.1", "x.org", link, rng) for _ in range(300)]
        assert any(not r.connected for r in results)
        assert any(r.connected for r in results)


class TestHTTPExchangeModel:
    def make_server(self):
        universe = build_universe()
        return universe.server_for_host("target.org")

    def test_clean_exchange(self):
        model = HTTPExchangeModel()
        result = model.exchange(
            URL.parse("http://target.org/favicon.ico"), self.make_server(),
            LinkQuality(rtt_ms=20, jitter_ms=0, loss_rate=0), np.random.default_rng(0),
        )
        assert result.completed
        assert result.response.ok

    def test_missing_server_times_out(self):
        model = HTTPExchangeModel(timeout_ms=7000)
        result = model.exchange(
            URL.parse("http://target.org/favicon.ico"), None,
            LinkQuality.broadband(), np.random.default_rng(0),
        )
        assert not result.completed
        assert result.elapsed_ms == 7000

    def test_http_drop(self):
        model = HTTPExchangeModel()
        result = model.exchange(
            URL.parse("http://target.org/favicon.ico"), self.make_server(),
            LinkQuality.broadband(), np.random.default_rng(0),
            [censor(FilteringMechanism.HTTP_DROP)],
        )
        assert not result.completed
        assert result.action is HTTPAction.DROP

    def test_block_page_substitution(self):
        model = HTTPExchangeModel()
        result = model.exchange(
            URL.parse("http://target.org/favicon.ico"), self.make_server(),
            LinkQuality.broadband(), np.random.default_rng(0),
            [censor(FilteringMechanism.HTTP_BLOCK_PAGE)],
        )
        assert result.completed
        assert result.response.is_block_page
        assert result.response.status == 200

    def test_throttle_slows_transfer(self):
        model = HTTPExchangeModel()
        link = LinkQuality(rtt_ms=20, jitter_ms=0, loss_rate=0, bandwidth_kbps=8000)
        clean = model.exchange(
            URL.parse("http://target.org/favicon.ico"), self.make_server(), link,
            np.random.default_rng(0),
        )
        throttled = model.exchange(
            URL.parse("http://target.org/favicon.ico"), self.make_server(), link,
            np.random.default_rng(0), [censor(FilteringMechanism.THROTTLING)],
        )
        assert throttled.completed
        assert throttled.elapsed_ms > clean.elapsed_ms

    def test_rst_censor_matches_at_http_stage_for_url_rules(self):
        url_censor = Censor(
            "keyword", BlacklistPolicy().block_keyword("banned"), FilteringMechanism.TCP_RST
        )
        model = HTTPExchangeModel()
        result = model.exchange(
            URL.parse("http://target.org/banned-topic.html"), self.make_server(),
            LinkQuality.broadband(), np.random.default_rng(0), [url_censor],
        )
        assert not result.completed
        assert result.action is HTTPAction.RESET
