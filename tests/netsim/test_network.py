"""Tests for the composed fetch pipeline (Network.fetch)."""

import numpy as np
import pytest

from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.netsim.errors import FailureKind, FailureStage
from repro.netsim.latency import LinkQuality
from repro.netsim.network import Network
from repro.web.resources import ContentType, Resource
from repro.web.server import WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


@pytest.fixture()
def network():
    universe = WebUniverse()
    site = Site("target.org")
    site.add(Resource(URL.parse("http://target.org/favicon.ico"), ContentType.IMAGE, 500,
                      cacheable=True, cache_ttl_s=60))
    site.add(Resource(URL.parse("http://target.org/page.html"), ContentType.HTML, 4000))
    universe.add_site(site)
    return Network(universe)


CLEAN_LINK = LinkQuality(rtt_ms=30, jitter_ms=0, loss_rate=0)


def censor_with(mechanism):
    return Censor("c", BlacklistPolicy.for_domains(["target.org"]), mechanism)


class TestCleanFetches:
    def test_successful_fetch(self, network):
        outcome = network.fetch("http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0))
        assert outcome.ok
        assert outcome.status == 200
        assert outcome.succeeded_with_content
        assert outcome.resolved_ip is not None
        assert not outcome.censor_interfered

    def test_elapsed_includes_dns_tcp_http(self, network):
        outcome = network.fetch("http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0))
        # At least three round trips (DNS, TCP handshake, HTTP exchange).
        assert outcome.elapsed_ms >= 3 * 30

    def test_unknown_host_fails_at_dns_without_censor_blame(self, network):
        outcome = network.fetch("http://unknown.example/", CLEAN_LINK, np.random.default_rng(0))
        assert outcome.failure_kind is FailureKind.DNS_NXDOMAIN
        assert outcome.stage_failed is FailureStage.DNS
        assert not outcome.censor_interfered

    def test_missing_path_is_not_found(self, network):
        outcome = network.fetch("http://target.org/missing.png", CLEAN_LINK, np.random.default_rng(0))
        assert not outcome.ok
        assert outcome.failure_kind is FailureKind.NOT_FOUND
        assert outcome.status == 404

    def test_offline_server_is_error_status(self, network):
        network.universe.take_offline("target.org")
        outcome = network.fetch("http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0))
        assert not outcome.ok
        assert outcome.failure_kind is FailureKind.HTTP_ERROR_STATUS
        assert not outcome.censor_interfered
        network.universe.bring_online("target.org")


class TestCensoredFetches:
    def test_dns_nxdomain_censor(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.DNS_NXDOMAIN)],
        )
        assert outcome.failure_kind is FailureKind.DNS_NXDOMAIN
        assert outcome.censor_interfered

    def test_dns_injection_leads_to_timeout_at_sinkhole(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.DNS_INJECTION)],
        )
        assert not outcome.ok
        assert outcome.stage_failed is FailureStage.HTTP
        assert outcome.censor_interfered

    def test_ip_drop(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.IP_DROP)],
        )
        assert outcome.failure_kind is FailureKind.TCP_TIMEOUT
        assert outcome.censor_interfered

    def test_tcp_rst(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.TCP_RST)],
        )
        assert outcome.failure_kind is FailureKind.TCP_RESET
        assert outcome.censor_interfered

    def test_http_drop(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.HTTP_DROP)],
        )
        assert outcome.failure_kind is FailureKind.HTTP_TIMEOUT
        assert outcome.censor_interfered

    def test_block_page_is_content_failure(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.HTTP_BLOCK_PAGE)],
        )
        assert not outcome.ok
        assert outcome.failure_kind is FailureKind.BLOCK_PAGE
        assert outcome.looks_like_block_page
        assert outcome.status == 200

    def test_throttling_completes_but_marks_interference(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.THROTTLING)],
        )
        assert outcome.ok
        assert outcome.censor_interfered

    def test_censor_for_other_domain_is_transparent(self, network):
        other = Censor("c", BlacklistPolicy.for_domains(["other.org"]), FilteringMechanism.DNS_NXDOMAIN)
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0), [other]
        )
        assert outcome.ok
        assert not outcome.censor_interfered

    def test_first_censor_on_path_wins(self, network):
        outcome = network.fetch(
            "http://target.org/favicon.ico", CLEAN_LINK, np.random.default_rng(0),
            [censor_with(FilteringMechanism.TCP_RST), censor_with(FilteringMechanism.DNS_NXDOMAIN)],
        )
        # DNS stage happens first, and the first interceptor with a DNS
        # opinion there is the second censor in the list; since the first
        # censor passes DNS, NXDOMAIN from the second applies.
        assert outcome.failure_kind is FailureKind.DNS_NXDOMAIN


class TestNoise:
    def test_unreliable_links_fail_sometimes_without_censors(self, network):
        rng = np.random.default_rng(5)
        link = LinkQuality(rtt_ms=200, jitter_ms=50, loss_rate=0.2)
        outcomes = [
            network.fetch("http://target.org/favicon.ico", link, rng) for _ in range(300)
        ]
        failures = [o for o in outcomes if not o.ok]
        successes = [o for o in outcomes if o.ok]
        assert failures, "expected some transient failures on a lossy link"
        assert successes, "expected mostly successes on a lossy link"
        assert all(not o.censor_interfered for o in failures)
