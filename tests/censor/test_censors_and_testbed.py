"""Tests for country censor presets and the §7.1 testbed."""

import pytest

from repro.censor.censors import (
    build_country_censors,
    censor_for_country,
    ground_truth_blocked,
)
from repro.censor.mechanisms import FilteringMechanism
from repro.censor.testbed import CensorshipTestbed
from repro.web.server import WebUniverse


class TestCountryCensors:
    def test_paper_confirmed_blocking_is_encoded(self):
        truth = ground_truth_blocked()
        # §7.2: youtube filtered in Pakistan, Iran, and China; twitter and
        # facebook filtered in China and Iran.
        assert "youtube.com" in truth["PK"]
        assert "youtube.com" in truth["IR"]
        assert "youtube.com" in truth["CN"]
        assert "twitter.com" in truth["CN"]
        assert "twitter.com" in truth["IR"]
        assert "facebook.com" in truth["CN"]
        assert "facebook.com" in truth["IR"]

    def test_us_has_no_censorship(self):
        country = censor_for_country("US")
        assert not country.filters_anything
        assert country.interceptors() == ()

    def test_unknown_country_is_uncensored(self):
        country = censor_for_country("ZZ")
        assert not country.filters_anything

    def test_china_uses_dns_injection_and_rst(self):
        censors = build_country_censors()["CN"].censors
        mechanisms = {c.mechanism for c in censors}
        assert FilteringMechanism.DNS_INJECTION in mechanisms
        assert FilteringMechanism.TCP_RST in mechanisms

    def test_would_filter_matches_ground_truth(self):
        censors = build_country_censors()
        assert censors["CN"].would_filter("http://facebook.com/")
        assert censors["PK"].would_filter("http://youtube.com/watch")
        assert not censors["PK"].would_filter("http://facebook.com/")
        assert not censors["GB"].would_filter("http://youtube.com/")

    def test_extra_policies_extend_blacklists(self):
        censors = build_country_censors({"CN": ["newly-blocked.net"], "FR": ["fr-only.net"]})
        assert censors["CN"].would_filter("http://newly-blocked.net/")
        assert censors["FR"].would_filter("http://fr-only.net/")
        assert not censors["FR"].would_filter("http://facebook.com/")


class TestCensorshipTestbed:
    @pytest.fixture(scope="class")
    def testbed(self):
        return CensorshipTestbed(rng=0)

    def test_one_host_per_mechanism_plus_control(self, testbed):
        assert len(testbed.hosts) == len(FilteringMechanism) + 1
        assert sum(1 for h in testbed.hosts if h.is_control) == 1

    def test_every_host_has_full_resource_set(self, testbed):
        for host in testbed.hosts:
            site = testbed.site(host.domain)
            assert site.favicon_url is not None
            assert any(r.is_stylesheet for r in site.resources.values())
            assert any(r.is_script for r in site.resources.values())
            assert site.pages

    def test_censors_cover_every_non_control_host(self, testbed):
        censors = testbed.censors()
        assert len(censors) == len(FilteringMechanism)
        for host in testbed.hosts:
            if host.is_control:
                assert not any(c.would_filter(f"http://{host.domain}/") for c in censors)
            else:
                assert any(c.would_filter(f"http://{host.domain}/") for c in censors)

    def test_expected_filtered_ground_truth(self, testbed):
        assert not testbed.expected_filtered(testbed.control_host.domain)
        rst_host = testbed.host_for_mechanism(FilteringMechanism.TCP_RST)
        assert testbed.expected_filtered(rst_host.domain)
        with pytest.raises(KeyError):
            testbed.expected_filtered("not-a-testbed-host.org")

    def test_register_adds_sites_to_universe_idempotently(self, testbed):
        universe = WebUniverse()
        testbed.register(universe)
        testbed.register(universe)
        assert len(universe) == len(testbed.hosts)

    def test_url_helpers_point_at_host(self, testbed):
        host = testbed.control_host
        assert testbed.favicon_url(host).host == host.domain
        assert testbed.page_url(host).path.endswith(".html")
        assert testbed.script_url(host).path.endswith(".js")
        assert testbed.stylesheet_url(host).path.endswith(".css")
