"""Tests for blacklist policies and the Censor interceptor."""

import pytest

from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy, BlockRule
from repro.netsim.dns import DNSAction
from repro.netsim.http import HTTPAction
from repro.netsim.tcp import TCPAction
from repro.web.url import URL


class TestBlockRule:
    def test_domain_rule_matches_host_and_subdomains(self):
        rule = BlockRule("domain", "example.com")
        assert rule.matches_host("example.com")
        assert rule.matches_host("www.example.com")
        assert not rule.matches_host("example.org")
        assert not rule.matches_host("notexample.com")

    def test_prefix_rule_matches_url_only(self):
        rule = BlockRule("prefix", "http://example.com/blog/")
        assert not rule.matches_host("example.com")
        assert rule.matches_url(URL.parse("http://example.com/blog/post"))
        assert not rule.matches_url(URL.parse("http://example.com/home"))

    def test_keyword_rule(self):
        rule = BlockRule("keyword", "falun")
        assert rule.matches_url(URL.parse("http://example.com/falun-article"))
        assert not rule.matches_url(URL.parse("http://example.com/other"))

    def test_invalid_rule_kind(self):
        with pytest.raises(ValueError):
            BlockRule("regex", ".*")

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            BlockRule("domain", "")


class TestBlacklistPolicy:
    def test_for_domains(self):
        policy = BlacklistPolicy.for_domains(["a.com", "B.org"])
        assert policy.blocks_host("a.com")
        assert policy.blocks_host("b.org")
        assert policy.blocked_domains == ["a.com", "b.org"]

    def test_builder_methods_chain(self):
        policy = BlacklistPolicy().block_domain("a.com").block_prefix("http://b.com/x/").block_keyword("bad")
        assert policy.blocks_host("a.com")
        assert policy.blocks_url("http://b.com/x/1")
        assert policy.blocks_url("http://c.com/bad-stuff")

    def test_host_matching_only_uses_domain_rules(self):
        policy = BlacklistPolicy().block_keyword("secret")
        assert not policy.blocks_host("secret.com") is True or True  # keyword rules never match hosts
        assert policy.matching_rule_for_host("secret.com") is None

    def test_empty_policy(self):
        policy = BlacklistPolicy()
        assert policy.is_empty()
        assert not policy.blocks_url("http://a.com/")


class TestFilteringMechanism:
    def test_stage_classification(self):
        assert FilteringMechanism.DNS_NXDOMAIN.stage == "dns"
        assert FilteringMechanism.DNS_INJECTION.stage == "dns"
        assert FilteringMechanism.IP_DROP.stage == "tcp"
        assert FilteringMechanism.TCP_RST.stage == "tcp"
        assert FilteringMechanism.HTTP_DROP.stage == "http"
        assert FilteringMechanism.HTTP_BLOCK_PAGE.stage == "http"
        assert FilteringMechanism.THROTTLING.stage == "http"

    def test_there_are_seven_mechanisms(self):
        assert len(FilteringMechanism) == 7

    def test_explicit_failure_flags(self):
        assert FilteringMechanism.DNS_NXDOMAIN.gives_explicit_failure
        assert not FilteringMechanism.THROTTLING.gives_explicit_failure
        assert not FilteringMechanism.HTTP_BLOCK_PAGE.gives_explicit_failure


class TestCensorInterception:
    def make(self, mechanism):
        return Censor("test", BlacklistPolicy.for_domains(["blocked.org"]), mechanism)

    def test_dns_actions(self):
        assert self.make(FilteringMechanism.DNS_NXDOMAIN).intercept_dns("blocked.org") is DNSAction.NXDOMAIN
        assert self.make(FilteringMechanism.DNS_INJECTION).intercept_dns("blocked.org") is DNSAction.INJECT
        assert self.make(FilteringMechanism.TCP_RST).intercept_dns("blocked.org") is DNSAction.PASS
        assert self.make(FilteringMechanism.DNS_NXDOMAIN).intercept_dns("fine.org") is DNSAction.PASS

    def test_tcp_actions(self):
        assert self.make(FilteringMechanism.IP_DROP).intercept_tcp("1.1.1.1", "blocked.org") is TCPAction.DROP
        assert self.make(FilteringMechanism.TCP_RST).intercept_tcp("1.1.1.1", "blocked.org") is TCPAction.RESET
        assert self.make(FilteringMechanism.DNS_NXDOMAIN).intercept_tcp("1.1.1.1", "blocked.org") is TCPAction.PASS

    def test_http_actions(self):
        url = URL.parse("http://blocked.org/page")
        assert self.make(FilteringMechanism.HTTP_DROP).intercept_http(url) is HTTPAction.DROP
        assert self.make(FilteringMechanism.HTTP_BLOCK_PAGE).intercept_http(url) is HTTPAction.BLOCK_PAGE
        assert self.make(FilteringMechanism.THROTTLING).intercept_http(url) is HTTPAction.THROTTLE
        assert self.make(FilteringMechanism.TCP_RST).intercept_http(url) is HTTPAction.RESET
        assert self.make(FilteringMechanism.DNS_NXDOMAIN).intercept_http(url) is HTTPAction.PASS

    def test_subdomain_of_blocked_domain_is_targeted(self):
        censor = self.make(FilteringMechanism.DNS_NXDOMAIN)
        assert censor.intercept_dns("cdn.blocked.org") is DNSAction.NXDOMAIN

    def test_would_filter_ground_truth(self):
        censor = self.make(FilteringMechanism.HTTP_BLOCK_PAGE)
        assert censor.would_filter("http://blocked.org/anything")
        assert not censor.would_filter("http://fine.org/anything")

    def test_infrastructure_blocking(self):
        censor = Censor(
            "infra",
            BlacklistPolicy(),
            FilteringMechanism.DNS_NXDOMAIN,
            blocked_infrastructure={"coordinator.encore-measurement.org"},
        )
        assert censor.intercept_dns("coordinator.encore-measurement.org") is DNSAction.NXDOMAIN
        assert censor.intercept_dns("example.com") is DNSAction.PASS

    def test_keyword_censor_only_acts_at_http(self):
        censor = Censor(
            "kw", BlacklistPolicy().block_keyword("banned"), FilteringMechanism.HTTP_DROP
        )
        assert censor.intercept_dns("any.org") is DNSAction.PASS
        assert censor.intercept_tcp("1.1.1.1", "any.org") is TCPAction.PASS
        assert censor.intercept_http(URL.parse("http://any.org/banned")) is HTTPAction.DROP


class TestPolicyMutationHooks:
    def test_unblock_domain_retracts_only_matching_rules(self):
        policy = BlacklistPolicy.for_domains(["a.com", "b.com"]).block_keyword("secret")
        policy.unblock_domain("A.com.")
        assert not policy.blocks_host("a.com")
        assert policy.blocks_host("b.com")
        assert policy.blocks_url("http://c.com/secret")

    def test_replace_domains_swaps_the_rule_set_in_place(self):
        policy = BlacklistPolicy.for_domains(["a.com"])
        same = policy.replace_domains(["b.com", "C.org"])
        assert same is policy
        assert not policy.blocks_host("a.com")
        assert policy.blocks_host("b.com")
        assert policy.blocks_host("sub.c.org")
        assert policy.replace_domains([]).is_empty()


class TestPolicyTimeline:
    def make_timeline(self):
        from repro.censor.policy import PolicyTimeline

        return (
            PolicyTimeline()
            .onset(5, "DE", "a.com")
            .throttle(8, "DE", "a.com")
            .onset(10, "DE", "a.com")
            .offset(15, "DE", "a.com")
            .onset(3, "CN", "b.org")
        )

    def test_state_replays_events_in_day_order(self):
        timeline = self.make_timeline()
        assert timeline.state_at(0) == {}
        assert timeline.state_at(5) == {"CN": {"b.org": "block"}, "DE": {"a.com": "block"}}
        assert timeline.state_at(8)["DE"] == {"a.com": "throttle"}
        assert timeline.state_at(12)["DE"] == {"a.com": "block"}
        assert timeline.state_at(20) == {"CN": {"b.org": "block"}}

    def test_transitions_reduce_to_hard_block_changes(self):
        transitions = [
            (e.day, e.country_code, e.domain, e.action)
            for e in self.make_timeline().transitions()
        ]
        assert transitions == [
            (3, "CN", "b.org", "onset"),
            (5, "DE", "a.com", "onset"),
            (8, "DE", "a.com", "offset"),   # block -> throttle leaves hard block
            (10, "DE", "a.com", "onset"),
            (15, "DE", "a.com", "offset"),
        ]

    def test_redundant_events_emit_no_transition(self):
        from repro.censor.policy import PolicyTimeline

        timeline = PolicyTimeline().onset(2, "DE", "a.com").onset(4, "DE", "a.com")
        timeline.offset(9, "DE", "a.com").offset(11, "DE", "a.com")
        assert [(e.day, e.action) for e in timeline.transitions()] == [
            (2, "onset"), (9, "offset"),
        ]

    def test_introspection_helpers(self):
        timeline = self.make_timeline()
        assert timeline.countries() == ("CN", "DE")
        assert timeline.final_day() == 15
        assert len(timeline) == 5

    def test_event_validation(self):
        from repro.censor.policy import PolicyEvent

        with pytest.raises(ValueError):
            PolicyEvent(-1, "DE", "a.com", "onset")
        with pytest.raises(ValueError):
            PolicyEvent(0, "DE", "a.com", "resume")
        with pytest.raises(ValueError):
            PolicyEvent(0, "", "a.com", "onset")
