"""Scenario-registry meta-test: no suite ships undocumented or ungated.

Registering a suite is a three-part contract — the catalog in
``docs/scenarios.md`` describes it, CI runs it (the scheduled lane's
``run all`` covers every suite; the fast lane additionally pins the smoke
suite by name), and ``benchmarks/`` carries its committed QUALITY baseline
so ``check_quality.py`` trends it from the first scheduled run.  This test
makes forgetting any leg a red build instead of a silent gap.
"""

from pathlib import Path

from repro.scenarios import get_suite, quality_filename, registered_suites

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestEverySuiteIsWired:
    def test_documented_in_the_catalog(self):
        catalog = (REPO_ROOT / "docs" / "scenarios.md").read_text()
        for name in registered_suites():
            assert f"`{name}`" in catalog, (
                f"suite {name!r} is registered but missing from docs/scenarios.md"
            )

    def test_ci_runs_every_suite(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        # The scheduled lane runs the whole registry...
        assert "repro.scenarios run all" in workflow
        # ...and the fast lane gates on the smoke suite by name.
        smoke = [n for n in registered_suites() if get_suite(n).smoke]
        for name in smoke:
            assert f"repro.scenarios run {name}" in workflow, (
                f"smoke suite {name!r} is not a fast-lane CI gate"
            )
        assert "check_quality.py" in workflow

    def test_committed_quality_baseline_exists(self):
        for name in registered_suites():
            baseline = REPO_ROOT / "benchmarks" / quality_filename(name)
            assert baseline.is_file(), (
                f"suite {name!r} has no committed {baseline.name}; run "
                "`python -m repro.scenarios run all --out benchmarks` and "
                "commit the artifact"
            )
