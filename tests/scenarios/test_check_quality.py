"""The quality trend gate: fails on seeded regressions, passes on baselines.

``benchmarks/check_quality.py`` is exercised exactly as CI invokes it — a
subprocess over directories of QUALITY artifacts — against synthetic
fresh/baseline pairs, plus one real-artifact case: the committed
``benchmarks/QUALITY_*.json`` baselines compared against themselves must
pass, or the repository is carrying a red gate.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
GATE = BENCH_DIR / "check_quality.py"


def run_gate(*argv):
    return subprocess.run(
        [sys.executable, str(GATE), *argv],
        capture_output=True, text=True, cwd=REPO_ROOT, env={**os.environ},
    )


def payload(suite="onset-smoke", **quality):
    base = {"lag_p90": 1.0, "false_alarms": 0, "detection_rate": 1.0}
    base.update(quality)
    return {"schema": "repro-quality/1", "suite": suite, "quality": base}


@pytest.fixture
def pair(tmp_path):
    """(fresh_dir, baseline_dir) seeded with one identical artifact each."""
    fresh, baseline = tmp_path / "fresh", tmp_path / "baseline"
    fresh.mkdir()
    baseline.mkdir()
    for directory in (fresh, baseline):
        (directory / "QUALITY_onset-smoke.json").write_text(json.dumps(payload()))
    return fresh, baseline


def rewrite(directory, **quality):
    path = directory / "QUALITY_onset-smoke.json"
    path.write_text(json.dumps(payload(**quality)))


class TestGateVerdicts:
    def test_identical_artifacts_pass(self, pair):
        fresh, baseline = pair
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 0, result.stdout
        assert "within tolerance" in result.stdout

    def test_lag_p90_regression_fails(self, pair):
        fresh, baseline = pair
        rewrite(fresh, lag_p90=2.0)  # +100% against a 25% ceiling
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 1
        assert "lag_p90" in result.stdout and "FAIL" in result.stdout

    def test_lag_p90_within_tolerance_passes(self, pair):
        fresh, baseline = pair
        rewrite(fresh, lag_p90=1.2)  # +20% < 25%
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 0, result.stdout

    def test_new_false_alarm_fails(self, pair):
        fresh, baseline = pair
        rewrite(fresh, false_alarms=1)
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 1
        assert "false alarms" in result.stdout

    def test_vanished_detections_fail(self, pair):
        # lag_p90 going numeric -> null means the detections disappeared;
        # that must not read as "no lag, great".
        fresh, baseline = pair
        rewrite(fresh, lag_p90=None)
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 1
        assert "vanished" in result.stdout

    def test_warn_fields_drift_without_failing(self, pair):
        fresh, baseline = pair
        rewrite(fresh, detection_rate=0.5)
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 0
        assert "WARN" in result.stdout and "detection_rate" in result.stdout

    def test_missing_baseline_is_a_loud_skip(self, pair):
        fresh, baseline = pair
        (baseline / "QUALITY_onset-smoke.json").unlink()
        result = run_gate("--fresh-dir", str(fresh), "--baseline-dir", str(baseline))
        assert result.returncode == 0
        assert "SKIP" in result.stdout and "commit" in result.stdout

    def test_no_fresh_artifacts_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        result = run_gate("--fresh-dir", str(empty))
        assert result.returncode == 1
        assert "no fresh QUALITY" in result.stdout


class TestCommittedBaselines:
    def test_committed_artifacts_pass_against_themselves(self, tmp_path):
        committed = sorted(BENCH_DIR.glob("QUALITY_*.json"))
        assert len(committed) >= 5, "expected committed QUALITY baselines"
        snapshot = tmp_path / "snapshot"
        snapshot.mkdir()
        for path in committed:
            shutil.copy(path, snapshot / path.name)
        result = run_gate(
            "--fresh-dir", str(BENCH_DIR), "--baseline-dir", str(snapshot)
        )
        assert result.returncode == 0, result.stdout
