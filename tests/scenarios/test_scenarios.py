"""The scenario-suite harness: registry, determinism, CLI, and telemetry.

The harness's contract is that a suite is a *function* of its seed: same
suite, same seed, byte-identical ``QUALITY_<suite>.json`` — even with a
ticking wall clock frozen out of the picture entirely.  These tests pin
that property on the fast-lane smoke suite, the artifact schema the gate
consumes, the CLI front door's exit codes, and the scenario spans the
runner emits into the PR 8 trace stream.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.clock import FrozenClock, set_default_clock
from repro.obs.metrics import get_registry
from repro.obs.report import load_trace, render_summary, summarize
from repro.obs.trace import TRACE_FILENAME
from repro.scenarios import (
    QUALITY_SCHEMA,
    get_suite,
    quality_diff,
    quality_filename,
    registered_suites,
    resolve_names,
    run_suite,
    run_suites,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every field the quality gate and the docs promise a timeline suite carries.
TIMELINE_FIELDS = {
    "transitions", "detected", "missed", "detection_rate", "miss_rate",
    "false_alarms", "lag_p50", "lag_p90", "lag_max", "mean_lag_days",
    "change_day_error_mean_abs", "change_day_error_max_abs",
}


def run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.scenarios", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )


@pytest.fixture
def frozen_clock():
    clock = FrozenClock(start=0.0, tick=1.0)
    previous = set_default_clock(clock)
    try:
        yield clock
    finally:
        set_default_clock(previous)


class TestRegistry:
    def test_suites_are_registered_and_sorted(self):
        names = registered_suites()
        assert names == tuple(sorted(names))
        assert len(names) >= 5
        assert "onset-smoke" in names

    def test_resolve_all_is_every_suite(self):
        assert resolve_names("all") == registered_suites()
        assert resolve_names("onset-smoke") == ("onset-smoke",)

    def test_unknown_suite_names_its_peers(self):
        with pytest.raises(KeyError, match="onset-smoke"):
            get_suite("no-such-suite")

    def test_smoke_suite_exists_for_the_fast_lane(self):
        smoke = [n for n in registered_suites() if get_suite(n).smoke]
        assert smoke == ["onset-smoke"]


class TestDeterminism:
    def test_quality_artifact_is_byte_identical_across_runs(self, tmp_path, frozen_clock):
        """Two FrozenClock runs of the same suite+seed: identical bytes."""
        first = run_suite("onset-smoke", out_dir=tmp_path / "a")
        second = run_suite("onset-smoke", out_dir=tmp_path / "b")
        assert first.path.read_bytes() == second.path.read_bytes()

    def test_payload_schema_and_cdf_fields(self, tmp_path):
        outcome = run_suite("onset-smoke", out_dir=tmp_path)
        payload = json.loads(outcome.path.read_text())
        assert outcome.path.name == quality_filename("onset-smoke")
        assert payload["schema"] == QUALITY_SCHEMA
        assert payload["suite"] == "onset-smoke"
        assert payload["kind"] == "longitudinal"
        assert TIMELINE_FIELDS <= set(payload["quality"])
        # The smoke suite genuinely detects: a real lag CDF, no noise.
        assert payload["quality"]["detection_rate"] == 1.0
        assert payload["quality"]["false_alarms"] == 0
        assert payload["quality"]["lag_p90"] is not None
        assert payload["quality"]["lag_p50"] <= payload["quality"]["lag_p90"]
        assert payload["quality"]["lag_p90"] <= payload["quality"]["lag_max"]

    def test_payload_carries_no_timestamps(self, tmp_path):
        # Byte-determinism holds with a *ticking* clock because the payload
        # is timestamp-free by design; pin that no time-ish key sneaks in.
        outcome = run_suite("onset-smoke", out_dir=tmp_path)
        flat = json.dumps(outcome.payload).lower()
        for banned in ("timestamp", "wall_", "duration", '"ts"'):
            assert banned not in flat


class TestRunnerTelemetry:
    def test_scenario_spans_and_counter_reach_the_trace(self, tmp_path, frozen_clock):
        get_registry().reset()
        run_suites("onset-smoke", out_dir=tmp_path, trace_dir=tmp_path)
        trace = load_trace(tmp_path / TRACE_FILENAME)
        scenario_spans = [s for s in trace.spans.values() if s.name == "scenario"]
        assert [s.attrs["suite"] for s in scenario_spans] == ["onset-smoke"]
        assert scenario_spans[0].attrs["kind"] == "longitudinal"
        assert scenario_spans[0].status == "ok"
        # The engine's own spans nest under the scenario span.
        assert any(s.name == "longitudinal" for s in scenario_spans[0].children)
        counters = {}
        for record in trace.metrics:
            if record.get("scope") == "campaign":
                counters = record.get("metrics", {}).get("counters", {})
        assert counters.get("scenarios.suites_run") == 1

    def test_summarize_reports_the_scenario_section(self, tmp_path, frozen_clock):
        run_suites("onset-smoke", out_dir=tmp_path, trace_dir=tmp_path)
        summary = summarize(load_trace(tmp_path / TRACE_FILENAME))
        assert summary["scenarios"] == [
            {
                "suite": "onset-smoke",
                "kind": "longitudinal",
                "duration_s": summary["scenarios"][0]["duration_s"],
                "status": "ok",
            }
        ]
        assert summary["scenarios"][0]["duration_s"] > 0
        assert "scenarios:" in render_summary(summary)

    def test_untraced_run_writes_nothing_but_artifacts(self, tmp_path):
        run_suites("onset-smoke", out_dir=tmp_path)
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {quality_filename("onset-smoke")}


class TestQualityDiff:
    def payload(self, **quality):
        return {"schema": QUALITY_SCHEMA, "suite": "s", "quality": quality}

    def test_changed_fields_get_deltas(self):
        diff = quality_diff(
            self.payload(lag_p90=1.0, false_alarms=0, cells=[1]),
            self.payload(lag_p90=2.0, false_alarms=0, cells=[2]),
        )
        assert diff["changed"] == ["lag_p90"]
        assert diff["fields"]["lag_p90"]["delta"] == 1.0
        assert "cells" not in diff["fields"]  # nested detail is not trended

    def test_none_transitions_are_reported_without_delta(self):
        diff = quality_diff(
            self.payload(lag_p90=None), self.payload(lag_p90=3.0)
        )
        assert diff["changed"] == ["lag_p90"]
        assert "delta" not in diff["fields"]["lag_p90"]


class TestCli:
    def test_list_names_every_registered_suite(self):
        result = run_cli("list", "--json")
        assert result.returncode == 0
        listed = [row["suite"] for row in json.loads(result.stdout)["suites"]]
        assert listed == list(registered_suites())

    def test_run_smoke_json_round_trips(self, tmp_path):
        result = run_cli("run", "onset-smoke", "--json", "--out", str(tmp_path))
        assert result.returncode == 0, result.stderr
        payloads = json.loads(result.stdout)["suites"]
        assert [p["suite"] for p in payloads] == ["onset-smoke"]
        on_disk = json.loads((tmp_path / quality_filename("onset-smoke")).read_text())
        assert on_disk == payloads[0]

    def test_run_unknown_suite_exits_one(self):
        result = run_cli("run", "no-such-suite")
        assert result.returncode == 1
        assert "no-such-suite" in result.stderr

    def test_missing_subcommand_is_a_usage_error(self):
        assert run_cli().returncode == 2

    def test_diff_directories_reports_changes(self, tmp_path):
        before, after = tmp_path / "before", tmp_path / "after"
        run_cli("run", "onset-smoke", "--out", str(before))
        run_cli("run", "onset-smoke", "--out", str(after))
        name = quality_filename("onset-smoke")
        edited = json.loads((after / name).read_text())
        edited["quality"]["lag_p90"] = 9.0
        (after / name).write_text(json.dumps(edited))
        result = run_cli("diff", str(before), str(after), "--json")
        assert result.returncode == 0
        diffs = json.loads(result.stdout)["diffs"]
        assert diffs[0]["changed"] == ["lag_p90"]
        clean = run_cli("diff", str(before), str(before), "--json")
        assert json.loads(clean.stdout)["diffs"][0]["changed"] == []

    def test_diff_unreadable_artifact_exits_one(self, tmp_path):
        result = run_cli("diff", str(tmp_path / "a.json"), str(tmp_path / "b.json"))
        assert result.returncode == 1
