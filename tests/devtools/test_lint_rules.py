"""The repro-lint rule catalog against the fixture corpora.

``fixtures/violations`` is a miniature repository breaking every rule at
known lines; ``fixtures/clean`` does the same work correctly.  Pinning the
exact (rule, path, line) set keeps both false negatives *and* false
positives from creeping into the rules.
"""

from pathlib import Path

from repro.devtools import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str):
    findings, _ = run_lint(FIXTURES / name, ["src", "benchmarks"])
    return findings


class TestViolationsCorpus:
    EXPECTED = {
        ("bench-hygiene", "benchmarks/test_bench_widget.py", 6),
        ("atomic-json-write", "src/repro/core/json_violations.py", 8),
        ("atomic-json-write", "src/repro/core/json_violations.py", 9),
        ("atomic-json-write", "src/repro/core/json_violations.py", 10),
        ("ordered-iteration", "src/repro/core/order_violations.py", 9),
        ("ordered-iteration", "src/repro/core/order_violations.py", 11),
        ("ordered-iteration", "src/repro/core/order_violations.py", 17),
        ("ordered-iteration", "src/repro/core/order_violations.py", 18),
        ("worker-pickle-safety", "src/repro/core/pool_violations.py", 12),
        ("worker-pickle-safety", "src/repro/core/pool_violations.py", 13),
        ("worker-pickle-safety", "src/repro/core/pool_violations.py", 14),
        ("worker-pickle-safety", "src/repro/core/pool_violations.py", 19),
        ("reference-pairing", "src/repro/core/reference_violations.py", 4),
        ("segment-streaming", "src/repro/core/segment_violations.py", 6),
        ("segment-streaming", "src/repro/core/segment_violations.py", 8),
        ("segment-streaming", "src/repro/core/segment_violations.py", 10),
        ("segment-streaming", "src/repro/core/segment_violations.py", 11),
        ("rng-discipline", "src/repro/core/rng_violations.py", 3),
        ("telemetry-hygiene", "src/repro/core/rng_violations.py", 4),
        ("telemetry-hygiene", "src/repro/core/telemetry_violations.py", 3),
        ("telemetry-hygiene", "src/repro/core/telemetry_violations.py", 4),
        ("telemetry-hygiene", "src/repro/core/telemetry_violations.py", 10),
        ("telemetry-hygiene", "src/repro/core/telemetry_violations.py", 11),
        ("rng-discipline", "src/repro/core/rng_violations.py", 11),
        ("rng-discipline", "src/repro/core/rng_violations.py", 15),
        ("rng-discipline", "src/repro/core/rng_violations.py", 23),
        ("rng-discipline", "src/repro/core/rng_violations.py", 24),
        ("rng-discipline", "src/repro/core/runner.py", 7),
        # The scenario-harness corpus: suites are under the same contracts.
        ("rng-discipline", "src/repro/scenarios/quality_violations.py", 9),
        ("telemetry-hygiene", "src/repro/scenarios/quality_violations.py", 10),
        ("atomic-json-write", "src/repro/scenarios/quality_violations.py", 12),
        ("atomic-json-write", "src/repro/scenarios/quality_violations.py", 13),
    }

    def test_every_rule_fires_at_the_expected_lines(self):
        findings = lint_fixture("violations")
        observed = {(f.rule, f.path, f.line) for f in findings}
        assert observed == self.EXPECTED

    def test_widget_bench_draws_both_hygiene_findings(self):
        # Unregistered key + missing slow marker anchor at the same line.
        findings = lint_fixture("violations")
        hygiene = [f for f in findings if f.rule == "bench-hygiene"]
        assert len(hygiene) == 2
        assert any("RATIO_FIELDS" in f.message for f in hygiene)
        assert any("slow marker" in f.message for f in hygiene)

    def test_telemetry_readbacks_cite_the_observer_effect_ban(self):
        # Wall-clock imports and registry/tracer read-backs are distinct
        # halves of the rule; each must carry its own diagnosis.
        findings = lint_fixture("violations")
        hygiene = [f for f in findings if f.rule == "telemetry-hygiene"]
        readbacks = {f.line for f in hygiene if "reads telemetry" in f.message}
        imports = {
            (f.path, f.line) for f in hygiene if "Clock indirection" in f.message
        }
        assert readbacks == {10, 11}
        assert imports == {
            ("src/repro/core/rng_violations.py", 4),
            ("src/repro/core/telemetry_violations.py", 3),
            ("src/repro/core/telemetry_violations.py", 4),
        }

    def test_findings_render_as_path_line_rule(self):
        finding = lint_fixture("violations")[0]
        rendered = finding.render()
        assert rendered.startswith(f"{finding.path}:{finding.line}: [{finding.rule}]")
        assert finding.to_payload() == {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }


class TestCleanCorpus:
    def test_clean_corpus_has_no_findings(self):
        assert lint_fixture("clean") == []

    def test_dropping_the_reference_test_breaks_the_pairing(self, tmp_path):
        # The clean corpus minus its tests/ directory: total_reference loses
        # its pinning test and the pairing rule must notice.
        import shutil

        stripped = tmp_path / "corpus"
        shutil.copytree(FIXTURES / "clean", stripped)
        shutil.rmtree(stripped / "tests")
        findings, _ = run_lint(stripped, ["src", "benchmarks"])
        assert [(f.rule, f.path) for f in findings] == [
            ("reference-pairing", "src/repro/core/good.py")
        ]
