"""Fixture: a scenario suite breaking the quality-harness invariants."""

import json

import numpy as np


def leaky_suite(tracer, out_dir):
    jitter = np.random.default_rng().random()
    spans = tracer.spans()
    payload = {"lag_p90": jitter, "spans": spans}
    with open(out_dir / "QUALITY_leaky.json", "w") as handle:
        json.dump(payload, handle)
