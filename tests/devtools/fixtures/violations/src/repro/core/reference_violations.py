"""Fixture: a scalar reference no test ever pins."""


def orphan_reference(values: list[int]) -> int:
    total = 0
    for value in values:
        total += value
    return total
