"""Fixture: every flavor of rng-discipline violation."""

import random
import time
from datetime import datetime

import numpy as np


def unseeded_generator() -> np.random.Generator:
    return np.random.default_rng()


def global_stream_draw() -> float:
    return float(np.random.uniform())


def stdlib_draw() -> float:
    return random.random()


def stamped() -> tuple[float, str]:
    started = time.time()
    return started, datetime.now().isoformat()
