"""Fixture: a block-planning module whose seed is not block-derived."""

import numpy as np


def plan_block(seed: int, epoch: int, block_index: int) -> np.ndarray:
    rng = np.random.default_rng(seed + block_index)
    return rng.random(4)
