"""Fixture: hash-order and filesystem-order leaks."""

import os
from pathlib import Path


def leaky(values: list[str]) -> list[str]:
    rows = []
    for value in {"a", "b", "c"}:
        rows.append(value)
    for distinct in set(values):
        rows.append(distinct)
    return rows


def segments(spill_dir: Path) -> list[str]:
    names = [path.name for path in spill_dir.glob("*.npz")]
    for entry in os.listdir(spill_dir):
        names.append(entry)
    return names
