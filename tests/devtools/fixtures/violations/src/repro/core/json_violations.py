"""Fixture: .json writes that bypass shard.write_json_atomic."""

import json
from pathlib import Path


def checkpoint(payload: dict, directory: Path) -> None:
    with open(directory / "state.json", "w") as handle:
        json.dump(payload, handle)
    (directory / "index.json").write_text(json.dumps(payload))
