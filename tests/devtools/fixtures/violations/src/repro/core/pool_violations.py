"""Fixture: unpicklable work shipped to process pools."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process


def fan_out(items: list[int]) -> None:
    def helper(item: int) -> int:
        return item * 2

    with ProcessPoolExecutor() as pool:
        pool.submit(lambda: 1)
        pool.map(helper, items)
    Process(target=helper).start()


class Sweeper:
    def run(self, executor: ProcessPoolExecutor) -> None:
        executor.submit(self.step)

    def step(self) -> None:
        return None
