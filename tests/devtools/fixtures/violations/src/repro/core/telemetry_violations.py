"""Fixture: every flavor of telemetry-hygiene violation."""

import time
from time import perf_counter

from repro.obs.metrics import get_registry


def leak_telemetry(tracer) -> float:
    snapshot = get_registry().snapshot()
    spans = tracer.open_spans()
    return snapshot["store.rows_ingested"] + spans + perf_counter()
