"""Hand-rolled segment loops the query kernel already streams."""


def bad_row_count(store):
    total = 0
    for part in store._segment_parts(("day",)):
        total += len(part["day"])
    for _offset, length, _part in store._segment_chunks(("day",)):
        total += length
    for seg in store._segments:
        total += len(seg.load_columns(("day",))["day"])
    return total
