"""Fixture benchmark: writes a BENCH file, unmarked and unregistered."""

import json
from pathlib import Path

REPORT_PATH = Path(__file__).parent / "BENCH_widget.json"


def test_widget_speedup() -> None:
    REPORT_PATH.write_text(json.dumps({"speedup": 2.0}))
