"""Fixture conftest: the widget module is exempt from auto-slow marking."""

SMOKE_MODULES = ("test_bench_widget.py",)
