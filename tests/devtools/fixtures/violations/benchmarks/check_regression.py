"""Fixture regression gate that registers no benchmark keys."""

RATIO_FIELDS: dict[str, str] = {}
