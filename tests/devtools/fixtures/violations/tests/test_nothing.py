"""Fixture test suite that exercises no reference function."""


def test_nothing() -> None:
    assert True
