"""Fixture: the sanctioned wall-clock module — exempt from both rules."""

import time


def monotonic() -> float:
    return time.perf_counter()


def wall() -> float:
    return time.time()
