"""Fixture: one clean counterpart per repro-lint rule."""

from pathlib import Path

import numpy as np


def seeded_sample(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.random())


def total_reference(values: list[int]) -> int:
    total = 0
    for value in values:
        total += value
    return total


def ordered(values: list[str], spill_dir: Path) -> list[str]:
    rows = [value for value in sorted(set(values))]
    for path in sorted(spill_dir.glob("*.npz")):
        rows.append(path.name)
    return rows


def checkpoint(path: Path, payload: dict) -> None:
    from repro.core.shard import write_json_atomic

    write_json_atomic(path, payload)


def double(item: int) -> int:
    return item * 2


def fan_out(items: list[int]) -> None:
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor() as pool:
        pool.map(double, items)
