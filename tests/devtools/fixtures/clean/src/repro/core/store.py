"""The segment-owning module: the one place segment loops may live."""


class TinyStore:
    def __init__(self):
        self._segments = []

    def _segment_chunks(self, names):
        offset = 0
        for seg in self._segments:
            yield offset, seg.length, seg.load_columns(names)
            offset += seg.length

    def _segment_parts(self, names):
        for _offset, _length, part in self._segment_chunks(names):
            yield part
