"""Fixture: write-only telemetry usage the hygiene rule must accept."""

from repro.obs.clock import monotonic
from repro.obs.metrics import get_registry


def traced_step(tracer, rows: int) -> None:
    started = monotonic()
    with tracer.span("ingest", block=0):
        get_registry().counter("store.rows_ingested").add(rows)
    tracer.event("batch", duration_s=monotonic() - started)
    tracer.record_metrics(scope="campaign")
