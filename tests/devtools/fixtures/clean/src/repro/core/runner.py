"""Fixture: block-planning module using the derived-seed list idiom."""

import numpy as np


def plan_block(seed: int, epoch: int, block_index: int) -> np.ndarray:
    rng = np.random.default_rng([seed, 11, epoch, block_index])
    return rng.random(4)
