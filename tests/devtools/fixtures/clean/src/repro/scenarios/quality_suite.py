"""Fixture: a scenario suite doing seeds, telemetry, and artifacts right."""

import numpy as np

from repro.core.shard import write_json_atomic
from repro.obs.metrics import get_registry


def graded_suite(tracer, out_dir) -> None:
    rng = np.random.default_rng(11)
    with tracer.span("scenario", suite="onset-smoke"):
        lag = float(np.quantile(rng.random(8), 0.9))
    get_registry().counter("scenarios.suites_run").add(1)
    tracer.record_metrics(scope="campaign")
    write_json_atomic(out_dir / "QUALITY_onset-smoke.json", {"lag_p90": lag})
