"""Fixture test pinning the scalar reference (reference-pairing contract)."""


def test_total_reference() -> None:
    from repro.core.good import total_reference

    assert total_reference([1, 2]) == 3
