"""Fixture regression gate with the widget benchmark registered."""

RATIO_FIELDS = {"BENCH_widget.json": "speedup"}
