"""Fixture conftest: no smoke exemptions, every bench module auto-slow."""

SMOKE_MODULES: tuple[str, ...] = ()
