"""Fixture benchmark: auto-slow via conftest, key registered in the gate."""

import json
from pathlib import Path

REPORT_PATH = Path(__file__).parent / "BENCH_widget.json"


def test_widget_speedup() -> None:
    REPORT_PATH.write_text(json.dumps({"speedup": 2.0}))
