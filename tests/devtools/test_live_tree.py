"""Meta-tests: the CLI front door, and the live tree staying lint-clean.

The live-tree check is the acceptance gate of the whole linter: if any
commit reintroduces a bypassed checkpoint write, an unseeded RNG, or an
unpinned reference path, this test (and the CI lint step) goes red.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*argv: str, cwd: Path = REPO_ROOT):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


class TestLiveTree:
    def test_src_and_benchmarks_are_lint_clean(self):
        result = run_cli("src", "benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_scenario_harness_is_lint_clean(self):
        # The quality suites are day-one citizens of the rng-discipline /
        # atomic-json-write / telemetry-hygiene contracts; pin the package
        # explicitly so a future suite can't drift out from under the rules.
        result = run_cli("src/repro/scenarios")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_fixture_corpus_fails_with_rule_ids_and_lines(self):
        result = run_cli(
            "--root", str(FIXTURES / "violations"), "src", "benchmarks"
        )
        assert result.returncode == 1
        assert (
            "src/repro/core/rng_violations.py:11: [rng-discipline]"
            in result.stdout
        )
        assert (
            "src/repro/core/json_violations.py:9: [atomic-json-write]"
            in result.stdout
        )


class TestCli:
    def test_json_report_shape(self):
        result = run_cli("--json", "--root", str(FIXTURES / "clean"), "src")
        assert result.returncode == 0
        report = json.loads(result.stdout)
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["files_scanned"] == 6
        assert "rng-discipline" in report["rules"]

    def test_json_report_carries_findings(self):
        result = run_cli(
            "--json", "--root", str(FIXTURES / "violations"), "src", "benchmarks"
        )
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["clean"] is False
        rules = {finding["rule"] for finding in report["findings"]}
        assert {
            "rng-discipline",
            "telemetry-hygiene",
            "atomic-json-write",
            "ordered-iteration",
            "reference-pairing",
            "worker-pickle-safety",
            "bench-hygiene",
        } <= rules

    def test_missing_target_is_a_usage_error(self, tmp_path):
        result = run_cli("--root", str(tmp_path), "no-such-dir")
        assert result.returncode == 2
        assert "no-such-dir" in result.stderr

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in (
            "rng-discipline",
            "telemetry-hygiene",
            "atomic-json-write",
            "ordered-iteration",
            "reference-pairing",
            "worker-pickle-safety",
            "bench-hygiene",
        ):
            assert rule_id in result.stdout
