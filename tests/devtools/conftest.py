"""Keep pytest out of the lint fixture corpus.

``fixtures/`` holds two miniature repositories (one violating every
repro-lint rule, one clean) whose files deliberately look like tests and
benchmarks; they exist to be *parsed* by the linter, never collected.
"""

collect_ignore = ["fixtures"]
