"""Suppression syntax: justified exemptions, and nothing quieter than that."""

from pathlib import Path

import pytest

from repro.devtools import run_lint


def corpus(tmp_path: Path, source: str, relpath: str = "src/repro/core/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return tmp_path


def lint(root: Path):
    findings, _ = run_lint(root, ["src"])
    return findings


VIOLATION = "import numpy as np\nrng = np.random.default_rng()\n"


class TestSuppressionSyntax:
    def test_trailing_suppression_silences_its_own_line(self, tmp_path):
        root = corpus(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()"
            "  # repro-lint: disable=rng-discipline -- fixture justification\n",
        )
        assert lint(root) == []

    def test_standalone_suppression_covers_the_next_code_line(self, tmp_path):
        root = corpus(
            tmp_path,
            "import numpy as np\n"
            "# repro-lint: disable=rng-discipline -- fixture justification\n"
            "rng = np.random.default_rng()\n",
        )
        assert lint(root) == []

    def test_suppression_lists_multiple_rules(self, tmp_path):
        root = corpus(
            tmp_path,
            "import json\n"
            "import numpy as np\n"
            "# repro-lint: disable=rng-discipline,atomic-json-write -- fixture\n"
            "json.dump(np.random.default_rng(), open('x.json', 'w'))\n",
        )
        assert lint(root) == []

    def test_unrelated_rule_does_not_suppress(self, tmp_path):
        root = corpus(
            tmp_path,
            "import numpy as np\n"
            "# repro-lint: disable=ordered-iteration -- wrong rule entirely\n"
            "rng = np.random.default_rng()\n",
        )
        rules = sorted(f.rule for f in lint(root))
        assert rules == ["rng-discipline", "unused-suppression"]

    def test_suppression_text_inside_strings_is_ignored(self, tmp_path):
        root = corpus(
            tmp_path,
            'DOC = "# repro-lint: disable=rng-discipline -- not a comment"\n'
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
        )
        assert [f.rule for f in lint(root)] == ["rng-discipline"]


class TestSuppressionHygiene:
    def test_justification_is_mandatory(self, tmp_path):
        root = corpus(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=rng-discipline\n",
        )
        findings = lint(root)
        assert [f.rule for f in findings] == ["bad-suppression"]
        assert "justification" in findings[0].message
        assert findings[0].line == 2

    def test_unknown_rule_ids_are_rejected(self, tmp_path):
        root = corpus(
            tmp_path,
            "x = 1  # repro-lint: disable=no-such-rule -- because\n",
        )
        findings = lint(root)
        assert [f.rule for f in findings] == ["bad-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_unused_suppressions_are_reported(self, tmp_path):
        root = corpus(
            tmp_path,
            "x = 1  # repro-lint: disable=rng-discipline -- nothing here anymore\n",
        )
        findings = lint(root)
        assert [f.rule for f in findings] == ["unused-suppression"]
        assert "rng-discipline" in findings[0].message

    def test_suppressions_cannot_hide_their_own_hygiene_findings(self, tmp_path):
        root = corpus(
            tmp_path,
            "x = 1  # repro-lint: disable=bad-suppression\n",
        )
        assert [f.rule for f in lint(root)] == ["bad-suppression"]


class TestEngineEdges:
    def test_syntax_errors_surface_as_parse_error(self, tmp_path):
        root = corpus(tmp_path, "def broken(:\n")
        findings = lint(root)
        assert [f.rule for f in findings] == ["parse-error"]

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint(tmp_path, ["no-such-dir"])

    def test_findings_are_sorted_and_stable(self, tmp_path):
        root = corpus(tmp_path, VIOLATION + "import random\n")
        first = [f.render() for f in lint(root)]
        second = [f.render() for f in lint(root)]
        assert first == second
        assert first == sorted(first)
