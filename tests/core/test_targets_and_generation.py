"""Tests for target lists, deployment phases, and the task-generation pipeline."""

import pytest

from repro.core.targets import TargetList, apply_phase, deployment_phases
from repro.core.task_generation import (
    PatternExpander,
    TargetFetcher,
    TaskGenerationLimits,
    TaskGenerationPipeline,
    TaskGenerator,
)
from repro.core.tasks import TaskType
from repro.web.resources import KILOBYTE
from repro.web.url import URLPattern


class TestTargetList:
    def test_high_value_defaults(self):
        target_list = TargetList.high_value()
        assert len(target_list) == 204
        assert len(target_list.online_entries) == 178

    def test_from_domains_and_urls(self):
        by_domain = TargetList.from_domains(["a.com", "b.org"])
        assert len(by_domain) == 2
        assert all(e.pattern.kind == "domain" for e in by_domain)
        by_url = TargetList.from_urls(["http://a.com/x", "http://a.com/y"])
        assert all(e.pattern.kind == "exact" for e in by_url)

    def test_restrict_to_domains(self):
        restricted = TargetList.high_value().restrict_to_domains(["facebook.com", "youtube.com"])
        assert sorted(restricted.online_domains) == ["facebook.com", "youtube.com"]

    def test_matching_entry(self):
        target_list = TargetList.from_domains(["a.com"])
        assert target_list.matching_entry("http://sub.a.com/page") is not None
        assert target_list.matching_entry("http://b.com/page") is None


class TestDeploymentPhases:
    def test_three_phases_in_order(self):
        phases = deployment_phases()
        assert [p.restriction for p in phases] == [
            "full_list", "favicons_only", "favicons_few_sites",
        ]
        assert [p.start for p in phases] == sorted(p.start for p in phases)

    def test_final_phase_restricts_to_three_social_sites(self):
        target_list = TargetList.high_value()
        final = deployment_phases()[-1]
        restricted = apply_phase(target_list, final)
        assert set(restricted.online_domains) == {"facebook.com", "youtube.com", "twitter.com"}

    def test_earlier_phases_keep_the_list(self):
        target_list = TargetList.high_value()
        for phase in deployment_phases()[:2]:
            assert len(apply_phase(target_list, phase)) == len(target_list)


class TestPipelineStages:
    def test_pattern_expander_caps_urls(self, feasibility_world):
        expander = PatternExpander(feasibility_world.search, max_urls=10)
        urls = expander.expand(URLPattern.domain("facebook.com"))
        assert 0 < len(urls) <= 10

    def test_target_fetcher_skips_failed_renders(self, feasibility_world):
        fetcher = TargetFetcher(feasibility_world.headless)
        good = feasibility_world.universe.site("facebook.com").page_urls[:3]
        hars = fetcher.fetch(list(good) + ["http://does-not-exist.example/"])
        assert len(hars) == 3

    def test_task_generator_domain_tasks_prefer_small_images(self, feasibility_world):
        fetcher = TargetFetcher(feasibility_world.headless)
        hars = fetcher.fetch(feasibility_world.universe.site("facebook.com").page_urls[:30])
        generator = TaskGenerator(TaskGenerationLimits(max_image_bytes=KILOBYTE))
        tasks = generator.domain_tasks("facebook.com", hars)
        image_tasks = [t for t in tasks if t.task_type is TaskType.IMAGE]
        assert image_tasks
        assert all(t.estimated_overhead_bytes <= KILOBYTE for t in image_tasks)

    def test_favicons_only_limits_to_favicon_image_tasks(self, feasibility_world):
        fetcher = TargetFetcher(feasibility_world.headless)
        hars = fetcher.fetch(feasibility_world.universe.site("facebook.com").page_urls[:30])
        generator = TaskGenerator(TaskGenerationLimits(favicons_only=True))
        tasks = generator.generate("facebook.com", hars)
        assert tasks
        assert all(t.task_type is TaskType.IMAGE for t in tasks)
        assert all(t.target_url.path == "/favicon.ico" for t in tasks)

    def test_page_tasks_respect_size_and_probe_limits(self, feasibility_world):
        fetcher = TargetFetcher(feasibility_world.headless)
        hars = fetcher.fetch(feasibility_world.universe.site("facebook.com").page_urls[:40])
        generator = TaskGenerator(TaskGenerationLimits())
        for har in hars:
            tasks = generator.page_tasks(har)
            if har.total_size_bytes > generator.limits.max_page_bytes:
                assert tasks == []
            for task in tasks:
                assert task.task_type is TaskType.INLINE_FRAME
                assert task.probe_image_url is not None


class TestFullPipeline:
    def test_run_produces_tasks_and_report(self, feasibility_report):
        assert feasibility_report.tasks
        assert feasibility_report.report.domains
        assert feasibility_report.urls_expanded > 0

    def test_report_covers_online_domains_only(self, feasibility_report):
        assert len(feasibility_report.report.domains) <= 60

    def test_tasks_reference_crawled_domains(self, feasibility_report):
        crawled = {d.domain for d in feasibility_report.report.domains}
        for task in feasibility_report.tasks:
            assert any(
                task.target_url.host == d or task.target_url.host.endswith("." + d) for d in crawled
            )

    def test_task_types_mix(self, feasibility_report):
        types = {t.task_type for t in feasibility_report.tasks}
        assert TaskType.IMAGE in types
        assert TaskType.STYLE_SHEET in types

    def test_tasks_for_domain_helper(self, feasibility_report):
        domain = feasibility_report.report.domains[0].domain
        for task in feasibility_report.tasks_for_domain(domain):
            assert task.target_url.host.endswith(domain)


class TestFeasibilityReport:
    def test_amenability_fractions_in_range(self, feasibility_report):
        report = feasibility_report.report
        assert 0.0 <= report.fraction_domains_measurable() <= 1.0
        assert 0.0 <= report.fraction_pages_measurable() <= 1.0

    def test_image_counts_by_size_class_are_monotone(self, feasibility_report):
        report = feasibility_report.report
        for domain in report.domains:
            assert domain.image_count_under_1kb <= domain.image_count_under_5kb <= domain.image_count_total

    def test_page_sizes_positive(self, feasibility_report):
        assert all(size > 0 for size in feasibility_report.report.page_sizes_bytes())

    def test_cacheable_images_filter_by_page_size(self, feasibility_report):
        report = feasibility_report.report
        all_pages = report.cacheable_images_per_page()
        small_pages = report.cacheable_images_per_page(100 * KILOBYTE)
        assert len(small_pages) <= len(all_pages)
