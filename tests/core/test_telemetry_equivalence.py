"""Telemetry is strictly write-only: tracing must never change results.

The observer-effect contract (docs/observability.md): running any campaign
with tracing enabled leaves every measurement row, censorship event, and
progress callback bit-identical to the same campaign with tracing off.
These tests pin that equivalence across the batch runner, the sharded
executor (including kill/resume), and the longitudinal engine — plus the
well-formedness of the merged trace streams the runs leave behind.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.censor.policy import PolicyTimeline
from repro.core.longitudinal import LongitudinalConfig, LongitudinalEngine
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.shard import MANIFEST_NAME
from repro.obs.report import load_trace, summarize
from repro.obs.trace import TRACE_FILENAME, Tracer
from repro.population.world import World, WorldConfig


def small_world(seed=7):
    return World(
        WorldConfig(seed=seed, target_list_total=30, target_list_online=24, origin_site_count=4)
    )


def sharded_deployment(seed=11, visits=900):
    config = CampaignConfig(
        visits=visits,
        include_testbed=True,
        testbed_fraction=0.3,
        plan_block_visits=128,
        seed=seed,
        mode="sharded",
    )
    return EncoreDeployment(small_world(), config)


def longitudinal_deployment(seed=11, country_code="DE"):
    config = CampaignConfig(
        visits=200,
        include_testbed=False,
        favicons_only=True,
        target_domains=("facebook.com", "youtube.com", "twitter.com"),
        seed=seed,
        country_code=country_code,
    )
    return EncoreDeployment(small_world(), config)


def progress_key(progress):
    """Every progress field except the observational wall-clock duration."""
    payload = dataclasses.asdict(progress)
    payload.pop("duration_s")
    return payload


def measurement_key(result):
    return [
        (
            str(m.target_url), m.task_type.value, m.country_code,
            m.outcome.value, m.elapsed_ms, m.probe_time_ms, m.origin_domain,
            m.day, m.client_ip, m.isp, m.browser_family, m.is_automated,
        )
        for m in result.measurements
    ]


def assert_well_formed(trace):
    """Structural contract of a merged campaign trace."""
    for span in trace.spans.values():
        assert span.status in ("ok", "error", "aborted")
        assert span.end is not None
        if span.parent:
            assert span.parent in trace.spans


# ----------------------------------------------------------------------
class TestTracedRunsAreIdentical:
    def test_sharded_campaign_rows_identical_with_tracing(self, tmp_path):
        untraced = sharded_deployment().run_campaign(
            num_shards=3, shard_executor="inline"
        )

        tracer = Tracer(tmp_path / TRACE_FILENAME)
        traced = sharded_deployment().run_campaign(
            num_shards=3, shard_executor="inline", tracer=tracer
        )
        tracer.close()

        assert measurement_key(traced) == measurement_key(untraced)
        assert (
            traced.collection.unreachable_submissions
            == untraced.collection.unreachable_submissions
        )

        trace = load_trace(tmp_path / TRACE_FILENAME)
        assert_well_formed(trace)
        assert [root.name for root in trace.roots] == ["campaign"]
        summary = summarize(trace)
        assert summary["totals"]["aborted_spans"] == 0
        assert [s["shard"] for s in summary["shards"]] == [0, 1, 2]
        for phase in ("plan", "execute", "ingest", "seal", "manifest", "adopt"):
            assert summary["phases"][phase]["count"] >= 1, phase
        assert summary["metrics"]["counters"]["store.rows_ingested"] > 0
        assert summary["metrics"]["gauges"]["process.peak_rss_kb"] > 0
        # Every inline worker recorded its own metrics scope.
        assert all(s["peak_rss_kb"] and s["peak_rss_kb"] > 0 for s in summary["shards"])

    def test_progress_stream_identical_with_tracing(self, tmp_path):
        def run(tracer=None):
            seen = []
            result = sharded_deployment().run_campaign(
                num_shards=3,
                shard_executor="inline",
                progress=seen.append,
                tracer=tracer,
            )
            return result, [progress_key(p) for p in seen]

        untraced_result, untraced_progress = run()
        tracer = Tracer(tmp_path / TRACE_FILENAME)
        traced_result, traced_progress = run(tracer)
        tracer.close()

        # The legacy callback rides the trace event stream: same payloads
        # in the same order either way (the trailing wall-clock duration
        # field is dropped — it is observational, not simulated).
        assert traced_progress == untraced_progress
        assert measurement_key(traced_result) == measurement_key(untraced_result)

        # The same payloads also landed in the trace as "shard" events.
        trace = load_trace(tmp_path / TRACE_FILENAME)
        shard_events = [e for e in trace.events if e["name"] == "shard"]
        assert len(shard_events) == 3
        assert [e["attrs"]["shard_index"] for e in shard_events] == [
            p["shard_index"] for p in traced_progress
        ]

    def test_batch_campaign_rows_identical_with_tracing(self, tmp_path):
        def run(tracer=None):
            seen = []
            deployment = sharded_deployment()
            result = deployment.run_campaign(
                mode="batch", progress=seen.append, tracer=tracer
            )
            return result, [progress_key(p) for p in seen]

        untraced_result, untraced_progress = run()
        tracer = Tracer(tmp_path / TRACE_FILENAME)
        traced_result, traced_progress = run(tracer)
        tracer.close()

        assert traced_progress == untraced_progress
        assert measurement_key(traced_result) == measurement_key(untraced_result)
        trace = load_trace(tmp_path / TRACE_FILENAME)
        assert_well_formed(trace)
        batch_events = [e for e in trace.events if e["name"] == "batch"]
        assert len(batch_events) == len(traced_progress)


# ----------------------------------------------------------------------
class TestLongitudinalEquivalence:
    TIMELINE_DAY = 2

    def run_engine(self, tmp_path, tag, trace=False, epochs=4):
        timeline = PolicyTimeline().onset(self.TIMELINE_DAY, "DE", "facebook.com")
        config = LongitudinalConfig(
            epochs=epochs,
            visits_per_epoch=150,
            mode="sharded",
            num_shards=2,
            shard_executor="inline",
            checkpoint_dir=str(tmp_path / f"ckpt-{tag}"),
            trace_dir=str(tmp_path / f"trace-{tag}") if trace else None,
        )
        engine = LongitudinalEngine(longitudinal_deployment(), timeline, config)
        return engine.run()

    def test_traced_run_row_and_event_identical(self, tmp_path):
        untraced = self.run_engine(tmp_path, "off")
        traced = self.run_engine(tmp_path, "on", trace=True)

        assert [dataclasses.astuple(e) for e in traced.events()] == [
            dataclasses.astuple(e) for e in untraced.events()
        ]
        a, b = untraced.collection.store, traced.collection.store
        assert len(a) == len(b)
        for column in ("day", "outcome", "domain", "country"):
            assert np.array_equal(a.column(column), b.column(column)), column

        trace = load_trace(tmp_path / "trace-on" / TRACE_FILENAME)
        assert_well_formed(trace)
        summary = summarize(trace)
        assert [e["epoch"] for e in summary["epochs"]] == [0, 1, 2, 3]
        for phase in ("longitudinal", "epoch", "campaign", "seal", "detect",
                      "checkpoint", "plan", "execute", "ingest"):
            assert summary["phases"][phase]["count"] >= 1, phase
        assert summary["metrics"]["counters"]["longitudinal.epochs_run"] >= 4

    def test_kill_and_resume_mid_epoch_stays_identical(self, tmp_path):
        untraced = self.run_engine(tmp_path, "ref")

        # First traced attempt "dies" after epoch 1: run only 2 epochs.
        self.run_engine(tmp_path, "killed", trace=True, epochs=2)
        # Resume from the same checkpoints and trace stream: epochs 0-1
        # are adopted, epochs 2-3 execute fresh, the tracer appends.
        config_dir = tmp_path / "ckpt-killed"
        trace_dir = tmp_path / "trace-killed"
        timeline = PolicyTimeline().onset(self.TIMELINE_DAY, "DE", "facebook.com")
        config = LongitudinalConfig(
            epochs=4,
            visits_per_epoch=150,
            mode="sharded",
            num_shards=2,
            shard_executor="inline",
            checkpoint_dir=str(config_dir),
            trace_dir=str(trace_dir),
        )
        resumed = LongitudinalEngine(
            longitudinal_deployment(), timeline, config
        ).run()

        assert [dataclasses.astuple(e) for e in resumed.events()] == [
            dataclasses.astuple(e) for e in untraced.events()
        ]
        a, b = untraced.collection.store, resumed.collection.store
        assert len(a) == len(b)
        for column in ("day", "outcome", "domain", "country"):
            assert np.array_equal(a.column(column), b.column(column)), column

        # The appended stream is still one well-formed trace; the second
        # attempt ran all four epochs itself (checkpoints carry rows, so
        # resumed epochs still re-run their campaigns).
        trace = load_trace(trace_dir / TRACE_FILENAME)
        assert_well_formed(trace)
        summary = summarize(trace)
        # Both attempts' epoch spans are present (summarize orders them by
        # epoch number): 0 and 1 appear twice, 2 and 3 only in the resume.
        assert [e["epoch"] for e in summary["epochs"]] == [0, 0, 1, 1, 2, 3]


# ----------------------------------------------------------------------
class TestKilledWorkerTraces:
    def test_orphan_worker_trace_is_salvaged_as_aborted(self, tmp_path):
        reference = sharded_deployment().run_campaign(
            num_shards=3, shard_executor="inline"
        )

        spill = tmp_path / "spill"
        tracer = Tracer(tmp_path / "first.jsonl")
        sharded_deployment().run_campaign(
            num_shards=3,
            shard_executor="inline",
            worker_spill_dir=str(spill),
            tracer=tracer,
        )
        tracer.close()

        # Kill one shard after the fact: drop its manifest (the commit
        # marker) and leave behind the partial trace of a dead attempt —
        # an open span plus a half-written record.
        victim = sorted(spill.rglob("shard-*"))[1]
        (victim / MANIFEST_NAME).unlink()
        (victim / TRACE_FILENAME).write_text(
            json.dumps(
                {"t": "B", "id": 1, "parent": 0, "name": "shard.execute",
                 "ts": 0.0, "attrs": {"shard": 1}}
            )
            + "\n"
            + '{"t": "E", "id": 1'  # killed mid-write
        )

        tracer = Tracer(tmp_path / "resume.jsonl")
        resumed = sharded_deployment().run_campaign(
            num_shards=3,
            shard_executor="inline",
            worker_spill_dir=str(spill),
            tracer=tracer,
        )
        tracer.close()

        assert measurement_key(resumed) == measurement_key(reference)

        trace = load_trace(tmp_path / "resume.jsonl")
        assert_well_formed(trace)
        aborted_wrappers = [
            s for s in trace.spans.values() if s.name == "shard.aborted"
        ]
        assert [s.attrs.get("shard") for s in aborted_wrappers] == [1]
        # The dead attempt's open span was closed as aborted under the
        # wrapper, and the evidence survived the retry's directory wipe.
        assert [c.status for c in aborted_wrappers[0].children] == ["aborted"]
        summary = summarize(trace)
        assert summary["totals"]["aborted_spans"] == 1
        # The re-executed shard is not marked resumed; the two survivors are.
        assert [(s["shard"], s["resumed"]) for s in summary["shards"]] == [
            (0, True), (1, False), (2, True)
        ]
