"""Tests for the collection server and the binomial filtering detector."""

import numpy as np
import pytest

from repro.browser.profiles import BrowserProfile
from repro.core.collection import CollectionServer
from repro.core.inference import (
    BinomialFilteringDetector,
    binomial_cdf,
    binomial_cdf_cells,
)
from repro.core.tasks import MeasurementTask, TaskOutcome, TaskResult, TaskType
from repro.netsim.latency import LinkQuality
from repro.population.clients import Client
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL


def make_client(country="US", automated=False, client_id=1, geoip=None):
    geoip = geoip or GeoIPDatabase()
    return Client(
        client_id=client_id,
        ip_address=geoip.allocate_ip(country),
        country_code=country,
        isp=f"{country.lower()}-isp-1",
        browser=BrowserProfile.chrome(),
        link=LinkQuality.broadband(),
        dwell_time_s=30.0,
        is_automated=automated,
    )


def make_result(domain="facebook.com", outcome=TaskOutcome.SUCCESS, measurement_id="m1"):
    url = URL.parse(f"http://{domain}/favicon.ico")
    return TaskResult(
        measurement_id=measurement_id,
        task_type=TaskType.IMAGE,
        target_url=url,
        target_domain=domain,
        outcome=outcome,
        elapsed_ms=80.0,
    )


class TestCollectionServer:
    def make_server(self):
        geoip = GeoIPDatabase()
        return CollectionServer("http://collector.encore-measurement.org/submit", geoip), geoip

    def test_record_geolocates_from_ip(self):
        server, geoip = self.make_server()
        measurement = server.record(make_result(), make_client("IR", geoip=geoip), "origin-00.example.edu")
        assert measurement.country_code == "IR"
        assert len(server) == 1

    def test_referer_stripping_hides_origin(self):
        server, geoip = self.make_server()
        kept = server.record(make_result(), make_client(geoip=geoip), "origin-00.example.edu",
                             strip_referer=False)
        stripped = server.record(make_result(), make_client(geoip=geoip), "origin-00.example.edu",
                                 strip_referer=True)
        assert kept.origin_domain == "origin-00.example.edu"
        assert stripped.origin_domain is None

    def test_filtered_excludes_automated_and_inconclusive(self):
        server, geoip = self.make_server()
        server.record(make_result(), make_client(geoip=geoip), None)
        server.record(make_result(outcome=TaskOutcome.INCONCLUSIVE), make_client(geoip=geoip), None)
        server.record(make_result(), make_client(automated=True, geoip=geoip), None)
        assert len(server.filtered()) == 1
        assert len(server.filtered(exclude_automated=False, exclude_inconclusive=False)) == 3

    def test_filtered_by_domain_country_type(self):
        server, geoip = self.make_server()
        server.record(make_result("facebook.com"), make_client("CN", geoip=geoip), None)
        server.record(make_result("youtube.com"), make_client("CN", geoip=geoip), None)
        server.record(make_result("facebook.com"), make_client("US", geoip=geoip), None)
        assert len(server.filtered(domain="facebook.com")) == 2
        assert len(server.filtered(domain="facebook.com", country_code="CN")) == 1
        assert len(server.filtered(task_type=TaskType.IMAGE)) == 3
        assert len(server.filtered(task_type=TaskType.SCRIPT)) == 0

    def test_success_counts_shape(self):
        server, geoip = self.make_server()
        server.record(make_result(outcome=TaskOutcome.SUCCESS), make_client("CN", geoip=geoip), None)
        server.record(make_result(outcome=TaskOutcome.FAILURE), make_client("CN", geoip=geoip), None)
        counts = server.success_counts()
        assert counts[("facebook.com", "CN")] == (2, 1)

    def test_distinct_counts_and_summary(self):
        server, geoip = self.make_server()
        for i in range(5):
            server.record(make_result(), make_client("US", client_id=i, geoip=geoip), None)
        assert server.distinct_ips() == 5
        assert server.distinct_countries() == 1
        assert server.summary()["measurements"] == 5


class TestBinomialCdf:
    def test_extremes(self):
        assert binomial_cdf(10, 10, 0.7) == 1.0
        assert binomial_cdf(-1, 10, 0.7) == 0.0
        assert binomial_cdf(0, 10, 0.0) == 1.0
        assert binomial_cdf(5, 10, 1.0) == 0.0

    def test_against_known_values(self):
        # P[Bin(10, 0.5) <= 5] = 0.623046875
        assert binomial_cdf(5, 10, 0.5) == pytest.approx(0.623046875, rel=1e-9)
        # P[Bin(20, 0.7) <= 10] ≈ 0.0480
        assert binomial_cdf(10, 20, 0.7) == pytest.approx(0.0479618, rel=1e-4)

    def test_monotone_in_successes(self):
        values = [binomial_cdf(k, 50, 0.7) for k in range(51)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_cdf(1, -1, 0.5)
        with pytest.raises(ValueError):
            binomial_cdf(1, 10, 1.5)


class TestLogFactorialTable:
    """The cumsum-extended log-factorial cache, pinned against math.lgamma."""

    def test_extension_preserves_prefix_and_tracks_lgamma(self, monkeypatch):
        import math

        from repro.core import inference

        # Start from a fresh one-entry table so the test exercises growth
        # regardless of what earlier tests already expanded the cache to.
        monkeypatch.setattr(inference, "_LOG_FACTORIALS", np.zeros(1))
        first = inference._log_factorials(100).copy()
        # Growing must *extend* the cached prefix, never rebuild it.
        grown = inference._log_factorials(5000)
        assert np.array_equal(grown[: len(first)], first)
        assert len(grown) > 5000
        expected = np.array([math.lgamma(i + 1.0) for i in range(0, len(grown), 97)])
        got = grown[::97]
        # Within a few ulp of lgamma everywhere (the extension accumulates
        # in extended precision, so error does not grow with table length).
        assert np.all(np.abs(got - expected) <= 4 * np.spacing(np.abs(expected)))

    def test_scalar_and_vector_paths_share_the_table(self):
        trials = np.array([500, 1200])
        successes = np.array([300, 700])
        cells = binomial_cdf_cells(successes, trials, 0.7)
        for s, n, cell in zip(successes, trials, cells):
            assert binomial_cdf(int(s), int(n), 0.7) == pytest.approx(
                float(cell), rel=1e-12, abs=1e-300
            )


class TestBinomialFilteringDetector:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BinomialFilteringDetector(success_prior=1.5)
        with pytest.raises(ValueError):
            BinomialFilteringDetector(significance=0.0)
        with pytest.raises(ValueError):
            BinomialFilteringDetector(min_measurements=0)

    def test_detects_regional_blocking(self):
        detector = BinomialFilteringDetector(min_measurements=10)
        counts = {
            ("youtube.com", "PK"): (40, 2),    # almost always fails in Pakistan
            ("youtube.com", "US"): (60, 58),   # fine in the US
            ("youtube.com", "DE"): (30, 29),   # fine in Germany
        }
        report = detector.detect_from_counts(counts)
        assert report.detected("youtube.com", "PK")
        assert not report.detected("youtube.com", "US")
        detection = report.detections_for_domain("youtube.com")[0]
        assert detection.corroborating_regions == 2
        assert detection.p_value <= 0.05

    def test_global_outage_is_not_filtering(self):
        detector = BinomialFilteringDetector(min_measurements=10)
        counts = {
            ("dead-site.org", "PK"): (40, 1),
            ("dead-site.org", "US"): (60, 2),
            ("dead-site.org", "DE"): (30, 0),
        }
        assert detector.detect_from_counts(counts).detections == []

    def test_sporadic_failures_do_not_trigger(self):
        detector = BinomialFilteringDetector(min_measurements=10)
        counts = {
            ("fine.org", "IN"): (50, 40),   # 80% success: above the 0.7 prior
            ("fine.org", "US"): (50, 49),
        }
        assert detector.detect_from_counts(counts).detections == []

    def test_min_measurements_suppresses_thin_regions(self):
        detector = BinomialFilteringDetector(min_measurements=10)
        counts = {
            ("youtube.com", "PK"): (5, 0),    # too few to conclude anything
            ("youtube.com", "US"): (60, 58),
        }
        assert detector.detect_from_counts(counts).detections == []

    def test_region_statistics_exposed(self):
        detector = BinomialFilteringDetector(min_measurements=10)
        counts = {("a.com", "US"): (20, 19)}
        stats = detector.region_statistics(counts)
        assert len(stats) == 1
        assert stats[0].success_rate == pytest.approx(0.95)

    def test_detect_from_measurements_filters_noise(self):
        geoip = GeoIPDatabase()
        server = CollectionServer("http://collector.encore-measurement.org/submit", geoip)
        for i in range(30):
            server.record(make_result("youtube.com", TaskOutcome.FAILURE, f"m{i}"),
                          make_client("PK", client_id=i, geoip=geoip), None)
        for i in range(60):
            server.record(make_result("youtube.com", TaskOutcome.SUCCESS, f"n{i}"),
                          make_client("US", client_id=100 + i, geoip=geoip), None)
        detector = BinomialFilteringDetector(min_measurements=10)
        report = detector.detect_from_measurements(server.measurements)
        assert report.detected_pairs() == {("youtube.com", "PK")}

    def test_stricter_significance_reduces_detections(self):
        counts = {
            ("a.com", "IR"): (20, 11),   # borderline: p-value ~ a few percent
            ("a.com", "US"): (40, 39),
        }
        lenient = BinomialFilteringDetector(significance=0.10, min_measurements=10)
        strict = BinomialFilteringDetector(significance=0.001, min_measurements=10)
        assert len(lenient.detect_from_counts(counts).detections) >= len(
            strict.detect_from_counts(counts).detections
        )
