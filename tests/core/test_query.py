"""The composable query kernel vs. its scalar reference twins.

``repro.core.query.run_query`` replaced the store's hand-rolled reductions
with one group-by engine; these tests pin the redesign's equivalence
contract: every (keys, aggregates, mask, exclusions) combination must agree
with ``run_query_reference`` — a per-row Python walk — on arbitrary corpora,
with and without spilled segments and adopted (merged) stores, and the four
legacy surfaces (``success_counts``, ``success_day_series``,
``masked_success_counts``, ``distinct_ips``) must stay row-identical to
their ``*_reference`` twins on the store.  The fold-once incremental
watermark, the ``store.query_folds`` counter, the deprecation shims, and
the :class:`TimingCusumDetector` vectorized ≡ scalar convention are pinned
here too.
"""

import json
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.reports import build_throttle_report
from repro.censor.policy import PolicyEvent, PolicyTimeline
from repro.core.collection import Measurement
from repro.core.inference import CensorshipEvent, TimingCusumDetector
from repro.core.query import (
    Count,
    DistinctCount,
    Quantiles,
    Query,
    SuccessCount,
    Sum,
    TimingDaySeries,
    dense_day_series,
    distinct_ip_count,
    grouped_success_counts,
    masked_grouped_success_counts,
    run_query,
    run_query_reference,
    timing_day_series,
)
from repro.core.store import MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.obs.metrics import get_registry
from repro.obs.trace import Tracer
from repro.web.url import URL


# ----------------------------------------------------------------------
# Random corpora (the store test conventions, plus timing variety)
# ----------------------------------------------------------------------
DOMAINS = ("facebook.com", "youtube.com", "twitter.com", "host-00.encore-testbed.net")
COUNTRIES = ("US", "CN", "IR", "DE")
ISPS = ("us-isp-1", "cn-isp-2", "attacker")
FAMILIES = ("chrome", "firefox", "ie")


@st.composite
def measurements(draw):
    domain = draw(st.sampled_from(DOMAINS))
    country = draw(st.sampled_from(COUNTRIES))
    return Measurement(
        measurement_id=f"m{draw(st.integers(min_value=0, max_value=30))}",
        task_type=draw(st.sampled_from(list(TaskType))),
        target_url=URL.parse(f"http://{domain}/favicon.ico"),
        target_domain=domain,
        outcome=draw(st.sampled_from(list(TaskOutcome))),
        elapsed_ms=draw(st.floats(min_value=0.0, max_value=5000.0)),
        client_ip=f"10.0.{draw(st.integers(min_value=0, max_value=40))}.7",
        country_code=country,
        isp=draw(st.sampled_from(ISPS)),
        browser_family=draw(st.sampled_from(FAMILIES)),
        origin_domain=None,
        day=draw(st.integers(min_value=0, max_value=20)),
        probe_time_ms=draw(
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=500.0))
        ),
        is_automated=draw(st.booleans()),
    )


corpora = st.lists(measurements(), max_size=60)

KEY_COMBOS = (
    ("domain", "country"),
    ("domain", "country", "day"),
    ("country", "day"),
    ("task",),
    ("isp", "family"),
)

FULL_AGGREGATES = (
    Count(),
    SuccessCount(),
    Quantiles("elapsed_ms", (0.5, 0.9, 0.99)),
    DistinctCount("client_ip"),
)

query_combos = st.fixed_dictionaries(
    {
        "keys": st.sampled_from(KEY_COMBOS),
        "exclude_automated": st.booleans(),
        "exclude_inconclusive": st.booleans(),
    }
)


def build_store(corpus, **kwargs):
    store = MeasurementStore(segment_rows=16, **kwargs)
    store.append_rows(corpus)
    return store


# ----------------------------------------------------------------------
# run_query ≡ run_query_reference
# ----------------------------------------------------------------------
class TestRunQueryEquivalence:
    @given(corpus=corpora, combo=query_combos)
    @settings(max_examples=60, deadline=None)
    def test_cells_equal_reference(self, corpus, combo):
        store = build_store(corpus)
        assert (
            run_query(store, combo["keys"], FULL_AGGREGATES,
                      exclude_automated=combo["exclude_automated"],
                      exclude_inconclusive=combo["exclude_inconclusive"]).as_dict()
            == run_query_reference(store, combo["keys"], FULL_AGGREGATES,
                                   exclude_automated=combo["exclude_automated"],
                                   exclude_inconclusive=combo["exclude_inconclusive"])
        )

    @given(corpus=corpora, combo=query_combos, mask_seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_masked_cells_equal_reference(self, corpus, combo, mask_seed):
        store = build_store(corpus)
        mask = np.random.default_rng(mask_seed).random(len(store)) < 0.5
        assert (
            run_query(store, combo["keys"], FULL_AGGREGATES, mask=mask,
                      exclude_automated=combo["exclude_automated"],
                      exclude_inconclusive=combo["exclude_inconclusive"]).as_dict()
            == run_query_reference(store, combo["keys"], FULL_AGGREGATES, mask=mask,
                                   exclude_automated=combo["exclude_automated"],
                                   exclude_inconclusive=combo["exclude_inconclusive"])
        )

    @given(corpus=corpora, combo=query_combos)
    @settings(max_examples=30, deadline=None)
    def test_spilled_store_equals_reference(self, corpus, combo):
        with tempfile.TemporaryDirectory() as tmp:
            store = MeasurementStore(
                segment_rows=8, max_rows_in_memory=8, spill_dir=tmp
            )
            store.append_rows(corpus)
            store.spill()
            assert (
                run_query(store, combo["keys"], FULL_AGGREGATES,
                          exclude_automated=combo["exclude_automated"],
                          exclude_inconclusive=combo["exclude_inconclusive"]).as_dict()
                == run_query_reference(
                    store, combo["keys"], FULL_AGGREGATES,
                    exclude_automated=combo["exclude_automated"],
                    exclude_inconclusive=combo["exclude_inconclusive"])
            )

    @given(corpus=corpora, split=st.integers(0, 60), combo=query_combos)
    @settings(max_examples=30, deadline=None)
    def test_adopted_merged_store_equals_reference(self, corpus, split, combo):
        """A store that adopted another worker's spilled segments."""
        split = min(split, len(corpus))
        with tempfile.TemporaryDirectory() as tmp:
            store = build_store(corpus[:split])
            other = MeasurementStore(segment_rows=8, spill_dir=tmp)
            other.append_rows(corpus[split:])
            other.spill()
            store.adopt_segments_from(other)
            assert (
                run_query(store, combo["keys"], FULL_AGGREGATES,
                          exclude_automated=combo["exclude_automated"],
                          exclude_inconclusive=combo["exclude_inconclusive"]).as_dict()
                == run_query_reference(
                    store, combo["keys"], FULL_AGGREGATES,
                    exclude_automated=combo["exclude_automated"],
                    exclude_inconclusive=combo["exclude_inconclusive"])
            )

    @given(corpus=corpora)
    @settings(max_examples=30, deadline=None)
    def test_sum_equals_reference_to_float_tolerance(self, corpus):
        """Sums fold segment partials, so association (not values) may differ."""
        store = build_store(corpus)
        aggregates = (Sum("elapsed_ms"), Sum("day"))
        fast = run_query(store, ("domain", "country"), aggregates).as_dict()
        reference = run_query_reference(store, ("domain", "country"), aggregates)
        assert fast.keys() == reference.keys()
        for group, row in fast.items():
            assert row == pytest.approx(reference[group])

    def test_query_dataclass_runs_like_the_function(self):
        corpus = _timing_corpus()
        store = build_store(corpus)
        spec = Query(keys=("domain", "country"), aggregates=FULL_AGGREGATES)
        assert spec.run(store).as_dict() == run_query_reference(
            store, ("domain", "country"), FULL_AGGREGATES
        )

    def test_store_query_method_is_the_kernel(self):
        store = build_store(_timing_corpus())
        assert store.query().as_dict() == run_query_reference(store)

    def test_invalid_keys_and_aggregates_fail_loudly(self):
        store = build_store(_timing_corpus())
        with pytest.raises(KeyError):
            run_query(store, ("no-such-axis",), (Count(),))
        with pytest.raises(ValueError):
            Quantiles("client_ip")
        with pytest.raises(ValueError):
            Sum("client_ip")
        with pytest.raises(ValueError):
            DistinctCount("elapsed_ms")
        with pytest.raises(ValueError):
            Quantiles("elapsed_ms", ())
        with pytest.raises(ValueError):
            run_query(store, ("domain",), (Count(),), mask=np.ones(3, dtype=bool))


def _timing_corpus(n=48, seed=5):
    rng = np.random.default_rng(seed)
    corpus = []
    for index in range(n):
        domain = DOMAINS[index % 3]
        country = COUNTRIES[index % 2]
        corpus.append(
            Measurement(
                measurement_id=f"t{index}",
                task_type=TaskType.IMAGE,
                target_url=URL.parse(f"http://{domain}/favicon.ico"),
                target_domain=domain,
                outcome=TaskOutcome.SUCCESS if index % 5 else TaskOutcome.FAILURE,
                elapsed_ms=float(rng.uniform(100.0, 900.0)),
                client_ip=f"10.1.{index % 9}.7",
                country_code=country,
                isp=ISPS[index % 2],
                browser_family=FAMILIES[index % 3],
                origin_domain=None,
                day=index % 6,
                probe_time_ms=None,
                is_automated=index % 7 == 0,
            )
        )
    return corpus


# ----------------------------------------------------------------------
# Legacy surfaces pinned to their store reference twins
# ----------------------------------------------------------------------
class TestLegacySurfacesPinned:
    @given(corpus=corpora, exclude_automated=st.booleans(), by_day=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_success_counts_pinned(self, corpus, exclude_automated, by_day):
        store = build_store(corpus)
        assert (
            grouped_success_counts(store, exclude_automated, by_day=by_day).as_dict()
            == store.success_counts_reference(
                exclude_automated, by_day=by_day
            ).as_dict()
        )

    @given(corpus=corpora, exclude_automated=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_success_day_series_pinned(self, corpus, exclude_automated):
        store = build_store(corpus)
        dense = dense_day_series(store, exclude_automated)
        reference = store.success_day_series_reference(exclude_automated)
        assert dense.n_days == reference.n_days
        assert np.array_equal(dense.domains, reference.domains)
        assert np.array_equal(dense.countries, reference.countries)
        assert np.array_equal(dense.totals, reference.totals)
        assert np.array_equal(dense.successes, reference.successes)

    @given(corpus=corpora, exclude_automated=st.booleans(), mask_seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_masked_success_counts_pinned(self, corpus, exclude_automated, mask_seed):
        store = build_store(corpus)
        mask = np.random.default_rng(mask_seed).random(len(store)) < 0.5
        assert (
            masked_grouped_success_counts(store, mask, exclude_automated).as_dict()
            == store.masked_success_counts_reference(mask, exclude_automated).as_dict()
        )

    @given(corpus=corpora)
    @settings(max_examples=40, deadline=None)
    def test_distinct_ips_pinned(self, corpus):
        store = build_store(corpus)
        assert distinct_ip_count(store) == store.distinct_ips_reference()

    def test_deprecated_methods_warn_and_delegate(self):
        store = build_store(_timing_corpus())
        mask = np.ones(len(store), dtype=bool)
        with pytest.warns(DeprecationWarning, match="success_counts"):
            assert store.success_counts().as_dict() == (
                grouped_success_counts(store).as_dict()
            )
        with pytest.warns(DeprecationWarning, match="success_day_series"):
            series = store.success_day_series()
        assert np.array_equal(series.totals, dense_day_series(store).totals)
        with pytest.warns(DeprecationWarning, match="masked_success_counts"):
            assert store.masked_success_counts(mask).as_dict() == (
                masked_grouped_success_counts(store, mask).as_dict()
            )
        with pytest.warns(DeprecationWarning, match="distinct_ips"):
            assert store.distinct_ips() == distinct_ip_count(store)


# ----------------------------------------------------------------------
# Fold-once incrementality and telemetry
# ----------------------------------------------------------------------
class TestFoldOnceAndTelemetry:
    def test_query_folds_each_sealed_segment_once(self):
        corpus = _timing_corpus(n=64)
        store = MeasurementStore(segment_rows=8)
        store.append_rows(corpus[:40])
        first = store.query(keys=("domain", "country", "day")).as_dict()
        assert store._query_states
        assert all(
            state.segments_folded == len(store._segments)
            for state in store._query_states.values()
        )
        # New rows advance the watermark; old segments are not refolded.
        counter = get_registry().counter("store.query_folds")
        segments_before = len(store._segments)
        folds_before = counter.value
        store.append_rows(corpus[40:])
        second = store.query(keys=("domain", "country", "day"))
        assert all(
            state.segments_folded == len(store._segments)
            for state in store._query_states.values()
        )
        new_segments = len(store._segments) - segments_before
        pending = len(store._pending)
        assert counter.value - folds_before == new_segments + pending
        # The incremental result equals a cold store over the same rows.
        cold = MeasurementStore(segment_rows=8)
        cold.append_rows(corpus)
        assert second.as_dict() == cold.query(keys=("domain", "country", "day")).as_dict()
        assert first == run_query_reference(
            store, ("domain", "country", "day"), mask=np.arange(len(store)) < 40
        )

    def test_cached_query_does_not_refold(self):
        store = build_store(_timing_corpus())
        store.query()
        counter = get_registry().counter("store.query_folds")
        before = counter.value
        assert store.query() is store.query()
        assert counter.value == before

    def test_default_tracer_is_null_and_opt_in_traces(self, tmp_path):
        """Observer effect ban: tracing is opt-in and changes no results."""
        store = build_store(_timing_corpus())
        silent = store.query(aggregates=FULL_AGGREGATES).as_dict()
        traced_store = build_store(_timing_corpus())
        tracer = Tracer(tmp_path / "trace.jsonl")
        traced = traced_store.query(aggregates=FULL_AGGREGATES, tracer=tracer)
        assert traced.as_dict() == silent
        names = [
            record["name"]
            for record in map(json.loads, (tmp_path / "trace.jsonl").read_text().splitlines())
            if record["t"] == "B"
        ]
        assert "store.query" in names
        assert "query.aggregate" in names


# ----------------------------------------------------------------------
# Timing day series + TimingCusumDetector: vectorized ≡ scalar reference
# ----------------------------------------------------------------------
def random_timing_series(rng, cells=24, n_days=40, quantile=0.9):
    """Synthetic per-pair daily quantiles with seeded throttle regimes."""
    domains = np.asarray([f"domain-{c % 5}.org" for c in range(cells)])
    countries = np.asarray([f"C{c % 7:02d}" for c in range(cells)])
    counts = rng.integers(0, 14, size=(cells, n_days))
    baselines = rng.uniform(150.0, 900.0, size=cells)
    values = baselines[:, None] * rng.uniform(0.85, 1.15, size=(cells, n_days))
    for cell in range(cells):
        if cell % 3 == 0:
            continue
        change = int(rng.integers(6, n_days))
        recovery = int(rng.integers(change, n_days + 8))
        values[cell, change:recovery] *= float(rng.uniform(3.0, 7.0))
    values[counts == 0] = np.nan
    return TimingDaySeries(
        domains, countries, counts, values, n_days, quantile
    )


class TestTimingCusumEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("threshold,drift,min_daily,baseline_days", [
        (2.0, 0.25, 5, 5), (1.0, 0.0, 1, 3), (3.0, 0.5, 8, 6),
    ])
    def test_events_match_reference_exactly(
        self, seed, threshold, drift, min_daily, baseline_days
    ):
        rng = np.random.default_rng(seed)
        series = random_timing_series(rng)
        detector = TimingCusumDetector(
            threshold=threshold,
            drift=drift,
            min_daily_measurements=min_daily,
            baseline_days=baseline_days,
        )
        fast = detector.detect_events(series)
        reference = detector.detect_events_reference(series)
        assert fast == reference
        assert fast  # the seeded slowdowns are large; silence would be a bug

    def test_empty_series_detects_nothing(self):
        empty = TimingDaySeries(
            np.empty(0, dtype=np.str_), np.empty(0, dtype=np.str_),
            np.zeros((0, 10), dtype=np.int64), np.full((0, 10), np.nan), 10, 0.9,
        )
        detector = TimingCusumDetector()
        assert detector.detect_events(empty) == []
        assert detector.detect_events_reference(empty) == []

    def test_cell_without_baseline_never_alarms(self):
        """No qualifying day in the baseline window means no evidence."""
        n_days = 20
        counts = np.full((1, n_days), 30, dtype=np.int64)
        counts[0, :5] = 1  # below min_daily_measurements while training
        values = np.full((1, n_days), 5000.0)
        series = TimingDaySeries(
            np.asarray(["x.org"]), np.asarray(["DE"]), counts, values, n_days, 0.9
        )
        detector = TimingCusumDetector(min_daily_measurements=5, baseline_days=5)
        assert detector.detect_events(series) == []
        assert detector.detect_events_reference(series) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingCusumDetector(slowdown=1.0)
        with pytest.raises(ValueError):
            TimingCusumDetector(drift=-0.1)
        with pytest.raises(ValueError):
            TimingCusumDetector(slowdown=1.5, drift=0.4)
        with pytest.raises(ValueError):
            TimingCusumDetector(threshold=0.0)
        with pytest.raises(ValueError):
            TimingCusumDetector(min_daily_measurements=0)
        with pytest.raises(ValueError):
            TimingCusumDetector(baseline_days=0)

    @given(corpus=corpora, quantile=st.sampled_from((0.5, 0.9)))
    @settings(max_examples=30, deadline=None)
    def test_timing_day_series_matches_query_cells(self, corpus, quantile):
        """The dense pair-day matrices re-ragged equal the cell query."""
        store = build_store(corpus)
        series = timing_day_series(store, quantile=quantile)
        expected = run_query_reference(
            store, ("domain", "country", "day"),
            (Count(), Quantiles("elapsed_ms", (quantile,))),
        )
        ragged = {}
        for pair in range(len(series)):
            for day in range(series.n_days):
                if series.counts[pair, day]:
                    ragged[
                        (str(series.domains[pair]), str(series.countries[pair]), day)
                    ] = (
                        int(series.counts[pair, day]),
                        (float(series.values[pair, day]),),
                    )
        assert ragged == expected
        # NaN exactly where a pair-day has no filtered measurements.
        assert np.array_equal(np.isnan(series.values), series.counts == 0)


# ----------------------------------------------------------------------
# Throttle ground truth and report grading
# ----------------------------------------------------------------------
class TestThrottleTransitionsAndReport:
    def test_throttle_transitions_dedup_and_offsets(self):
        timeline = (
            PolicyTimeline()
            .throttle(3, "DE", "facebook.com")
            .throttle(5, "DE", "facebook.com")   # redundant: no event
            .offset(8, "DE", "facebook.com")
            .throttle(10, "CN", "youtube.com")
            .onset(12, "CN", "youtube.com")      # blocked ends throttling
        )
        assert timeline.throttle_transitions() == [
            PolicyEvent(3, "DE", "facebook.com", "throttle"),
            PolicyEvent(8, "DE", "facebook.com", "offset"),
            PolicyEvent(10, "CN", "youtube.com", "throttle"),
            PolicyEvent(12, "CN", "youtube.com", "offset"),
        ]
        # Hard blocks alone never appear in the throttle ground truth.
        assert PolicyTimeline().onset(2, "IR", "twitter.com").throttle_transitions() == []

    def test_build_throttle_report_grades_timing_events(self):
        timeline = (
            PolicyTimeline()
            .throttle(5, "DE", "facebook.com")
            .offset(9, "DE", "facebook.com")
        )

        def event(kind, change_day, detected_day, domain="facebook.com", country="DE"):
            return CensorshipEvent(
                domain=domain, country_code=country, kind=kind,
                change_day=change_day, detected_day=detected_day,
                statistic=3.0, confidence=1.0,
            )

        onset = event("throttle-onset", 5, 6)
        offset = event("throttle-offset", 9, 10)
        spurious = event("throttle-onset", 2, 3, domain="youtube.com")
        report = build_throttle_report([onset, offset, spurious], timeline)
        assert report.detection_rate == 1.0
        assert [match.kind for match in report.matches] == [
            "throttle-onset", "throttle-offset"
        ]
        assert [match.event for match in report.matches] == [onset, offset]
        assert report.matches[0].detection_lag == 1
        assert report.false_events == [spurious]
