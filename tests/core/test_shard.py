"""Sharded multi-process campaign execution (the shard subsystem's guarantees).

``mode="sharded"`` partitions a campaign's planning blocks across worker
processes and merges their spilled segments back into one store.  Because
every block's randomness derives from ``(seed, epoch, block_index)`` alone,
the merged campaign must be *identical* — same rows, same order — to the
single-process ``mode="batch"`` campaign for any shard count; these tests
pin that, plus the planner's partition properties, the store merger's code
translation, and the manifest-based crash-resume path.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.collection import CollectionServer
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.shard import (
    MANIFEST_NAME,
    ShardPlanner,
    ShardProgress,
    StoreMerger,
    campaign_signature,
    execute_shard,
    load_manifest,
    write_json_atomic,
)
from repro.core.query import grouped_success_counts
from repro.core.store import MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.population.world import World, WorldConfig
from repro.web.url import URL


def small_deployment(mode, seed=11, visits=900, include_testbed=True, **config_kw):
    world = World(
        WorldConfig(seed=7, target_list_total=30, target_list_online=24, origin_site_count=4)
    )
    config_kw.setdefault("testbed_fraction", 0.3)
    config_kw.setdefault("plan_block_visits", 128)
    config = CampaignConfig(
        visits=visits,
        include_testbed=include_testbed,
        seed=seed,
        mode=mode,
        **config_kw,
    )
    return EncoreDeployment(world, config)


def measurement_key(result):
    return [
        (
            str(m.target_url), m.task_type.value, m.country_code,
            m.outcome.value, m.elapsed_ms, m.probe_time_ms, m.origin_domain,
            m.day, m.client_ip, m.isp, m.browser_family, m.is_automated,
        )
        for m in result.measurements
    ]


class TestShardPlanner:
    def test_blocks_partitioned_exactly_once(self):
        planner = ShardPlanner(visits=10_000, plan_block_visits=256, num_shards=7)
        assignments = planner.plan()
        dealt = [b for a in assignments for b in a.block_indices]
        assert sorted(dealt) == list(range(planner.block_count))

    def test_round_robin_balances_shards(self):
        planner = ShardPlanner(visits=64 * 100, plan_block_visits=64, num_shards=4)
        sizes = [len(a.block_indices) for a in planner.plan()]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_blocks_drops_empty_shards(self):
        planner = ShardPlanner(visits=300, plan_block_visits=128, num_shards=8)
        assignments = planner.plan()
        assert len(assignments) == planner.block_count == 3
        assert all(a.block_indices for a in assignments)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ShardPlanner(visits=-1, plan_block_visits=10, num_shards=1)
        with pytest.raises(ValueError):
            ShardPlanner(visits=10, plan_block_visits=0, num_shards=1)
        with pytest.raises(ValueError):
            ShardPlanner(visits=10, plan_block_visits=10, num_shards=0)


class TestShardedEqualsBatch:
    """The core determinism property: any shard count, identical campaign."""

    @pytest.fixture(scope="class")
    def batch_reference(self):
        return small_deployment("batch").run_campaign()

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_merged_rows_identical_for_any_shard_count(self, batch_reference, num_shards):
        sharded = small_deployment("sharded").run_campaign(
            num_shards=num_shards, shard_executor="inline"
        )
        assert sharded.mode == "sharded"
        # Not just the same multiset: the merger adopts blocks in campaign
        # order, so even the row order matches the single-process campaign.
        assert measurement_key(sharded) == measurement_key(batch_reference)
        assert sharded.task_executions == batch_reference.task_executions

    def test_counters_and_verdicts_match(self, batch_reference):
        deployment = small_deployment("sharded")
        sharded = deployment.run_campaign(num_shards=3, shard_executor="inline")
        assert (
            sharded.collection.unreachable_submissions
            == batch_reference.collection.unreachable_submissions
        )
        assert (
            deployment.coordination.delivery_failure_rate
            == batch_reference.coordination.delivery_failure_rate
        )
        assert sharded.detect().detected_pairs() == batch_reference.detect().detected_pairs()
        assert (
            sharded.collection.success_counts()
            == batch_reference.collection.success_counts()
        )
        assert sharded.collection.distinct_ips() == batch_reference.collection.distinct_ips()

    def test_process_pool_matches_batch(self, batch_reference):
        sharded = small_deployment("sharded").run_campaign(num_shards=2)
        assert measurement_key(sharded) == measurement_key(batch_reference)

    def test_replication_counts_survive_the_merge(self):
        # Worker-side scheduling counts are folded back through manifests,
        # so the campaign-wide replication report matches the in-process
        # run's (up to the uuid4 task ids, which differ per deployment).
        sharded_deployment = small_deployment("sharded")
        sharded_deployment.run_campaign(num_shards=3, shard_executor="inline")
        batch_deployment = small_deployment("batch")
        batch_deployment.run_campaign()
        assert sorted(sharded_deployment.scheduler.replication_report().values()) == sorted(
            batch_deployment.scheduler.replication_report().values()
        )

    def test_sharded_mode_rejects_batch_only_arguments(self):
        deployment = small_deployment("sharded", visits=128)
        with pytest.raises(ValueError, match="sharded"):
            deployment.run_campaign(batch_size=64)
        with pytest.raises(ValueError, match="sharded"):
            deployment.run_campaign(resume_from_batch=1)
        batch = small_deployment("batch", visits=128)
        with pytest.raises(ValueError, match="sharded"):
            batch.run_campaign(num_shards=2)


class TestShardProgressAndResume:
    def test_progress_hook_sees_every_shard(self, tmp_path):
        seen = []
        deployment = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        deployment.run_campaign(num_shards=3, shard_executor="inline", progress=seen.append)
        assert len(seen) == 3
        assert all(isinstance(p, ShardProgress) for p in seen)
        assert seen[-1].shards_completed == 3
        assert seen[-1].visits_completed == 900
        assert seen[-1].blocks_completed == seen[-1].blocks_total
        assert not any(p.resumed for p in seen)
        assert seen[-1].measurements_total == len(deployment.collection)

    def test_killed_worker_resumes_from_surviving_manifests(self, tmp_path):
        reference = small_deployment("batch").run_campaign()

        first = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        first_result = first.run_campaign(num_shards=3, shard_executor="inline")
        first_ids = {m.measurement_id for m in first_result.measurements}
        survivors = {
            p: (p / MANIFEST_NAME).read_text()
            for p in sorted(tmp_path.rglob("shard-*"))
        }
        assert len(survivors) == 3

        # Simulate a worker killed mid-shard: its manifest (the commit
        # marker) never landed, so its partial segments are garbage.
        victim = sorted(tmp_path.rglob("shard-*"))[1]
        (victim / MANIFEST_NAME).unlink()
        orphan = victim / "left-behind.npz"
        orphan.write_bytes(b"partial output of the dead attempt")

        seen = []
        # A *fresh* deployment (new uuid4 task ids, as after a process
        # restart): the campaign file pins the original id space.
        resumed = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        result = resumed.run_campaign(
            num_shards=3, shard_executor="inline", progress=seen.append
        )
        # Only the killed shard re-executed; the survivors were adopted
        # verbatim from their manifests.
        assert sorted(p.resumed for p in seen) == [False, True, True]
        for path, manifest_text in survivors.items():
            if path != victim:
                assert (path / MANIFEST_NAME).read_text() == manifest_text
        assert measurement_key(result) == measurement_key(reference)
        assert (
            result.collection.unreachable_submissions
            == reference.collection.unreachable_submissions
        )
        # One coherent measurement-id space across the restart — the
        # re-executed shard adopted the original run's task ids — and the
        # dead attempt's partial segments were cleared, not accumulated.
        assert {m.measurement_id for m in result.measurements} == first_ids
        assert not orphan.exists()

    def test_foreign_manifest_is_ignored(self, tmp_path):
        deployment = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        config = deployment.config
        signature = campaign_signature(deployment, epoch=1, visits=900)
        planner = ShardPlanner(900, config.plan_block_visits, 2)
        assignment = planner.plan()[0]
        shard_dir = tmp_path / assignment.directory_name
        shard_dir.mkdir()
        foreign = json.loads(json.dumps(signature))
        foreign["campaign"]["seed"] = 999
        stale = {"signature": foreign, "block_indices": list(assignment.block_indices)}
        (shard_dir / MANIFEST_NAME).write_text(json.dumps(stale))
        assert load_manifest(shard_dir, signature, assignment) is None

    def test_resume_with_unset_shard_count_reuses_recorded_partition(self, tmp_path):
        # num_shards=None falls back to the host CPU count, which can
        # differ on the resuming host; the campaign file records the
        # original partition so a resume adopts the old manifests instead
        # of silently re-executing everything.
        reference = small_deployment("batch").run_campaign()
        first = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        first.run_campaign(num_shards=3, shard_executor="inline")

        seen = []
        resumed = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        result = resumed.run_campaign(shard_executor="inline", progress=seen.append)
        assert len(seen) == 3 and all(p.resumed for p in seen)
        assert measurement_key(result) == measurement_key(reference)

    def test_repartitioned_campaign_keeps_earlier_merge_readable(self, tmp_path):
        # Same campaign, same spill dir, different explicit shard count:
        # the partition is part of the shard directory names, so the new
        # run's cleanup can never delete segments the first run's merged
        # store still reads lazily.
        first = small_deployment("sharded", worker_spill_dir=str(tmp_path)).run_campaign(
            num_shards=4, shard_executor="inline"
        )
        first_counts = first.collection.success_counts()
        second = small_deployment("sharded", worker_spill_dir=str(tmp_path)).run_campaign(
            num_shards=2, shard_executor="inline"
        )
        assert measurement_key(second) == measurement_key(first)
        assert first.collection.success_counts() == first_counts
        assert len(first.collection.measurements) == len(first.collection)

    def test_second_campaign_on_one_deployment_gets_fresh_client_identities(self):
        # Client ids / IP hosts are numbered from the deployment's claimed
        # visit base, so two campaigns on one deployment never mint the
        # same client identity (until a country's IP space wraps).
        deployment = small_deployment("batch", visits=400)
        deployment.run_campaign()
        first_rows = len(deployment.collection)
        first_ips = {m.client_ip for m in deployment.collection.measurements[:first_rows]}
        deployment.run_campaign()
        second_ips = {
            m.client_ip for m in deployment.collection.measurements[first_rows:]
        }
        assert not (first_ips & second_ips)
        assert deployment.collection.distinct_ips() == len(first_ips) + len(second_ips)

    def test_shared_spill_dir_keeps_earlier_campaigns_readable(self, tmp_path):
        # Regression: campaigns get signature-keyed subdirectories of the
        # spill root, so re-executing campaign B's shards can never delete
        # segment files campaign A's merged store still reads lazily.
        first_dep = small_deployment("sharded", seed=11, worker_spill_dir=str(tmp_path))
        first = first_dep.run_campaign(num_shards=2, shard_executor="inline")
        first_counts = first.collection.success_counts()
        second = small_deployment(
            "sharded", seed=12, worker_spill_dir=str(tmp_path)
        ).run_campaign(num_shards=2, shard_executor="inline")
        assert len(second.collection) > 0
        # The first campaign's store still answers queries off its files.
        assert first.collection.success_counts() == first_counts
        assert len(first.collection.measurements) == len(first.collection)

    def test_zero_plan_block_visits_rejected_in_every_mode(self):
        batch = small_deployment("batch", visits=64, plan_block_visits=0)
        with pytest.raises(ValueError, match="plan_block_visits"):
            batch.run_campaign()
        sharded = small_deployment("sharded", visits=64, plan_block_visits=0)
        with pytest.raises(ValueError, match="plan_block_visits"):
            sharded.run_campaign(num_shards=1, shard_executor="inline")

    def test_temporary_spill_root_reclaimed_with_the_store(self):
        import gc

        deployment = small_deployment("sharded", visits=256)
        result = deployment.run_campaign(num_shards=2, shard_executor="inline")
        segment = Path(result.collection.store.segment_files[0])
        # <temp root>/campaign-XX-xxxx/shard-XXX/store-XXXX/segment-XXXXX.npz
        temp_root = segment.parents[3]
        assert temp_root.name.startswith("encore-shards-")
        del result
        deployment.collection = None
        del deployment
        gc.collect()
        assert not temp_root.exists()

    def test_signature_covers_campaign_content(self):
        # Same seed/visits but different campaign content (days, testbed,
        # targets, world) must not share manifests.
        base = small_deployment("sharded")
        reference = campaign_signature(base, epoch=1, visits=900)
        for kw in (
            {"days": 7},
            {"include_testbed": False},
            {"testbed_fraction": 0.5},
            {"target_domains": ("facebook.com",)},
        ):
            other = small_deployment("sharded", **kw)
            assert campaign_signature(other, 1, 900) != reference
        different_world = EncoreDeployment(
            World(WorldConfig(seed=8, target_list_total=30, target_list_online=24,
                              origin_site_count=4)),
            base.config,
        )
        assert campaign_signature(different_world, 1, 900) != reference

    def test_rebuilt_worker_matches_forked_worker(self, tmp_path):
        # The spawn fallback rebuilds the deployment from pickled configs
        # and adopts the parent's task ids, so its shard output — including
        # the measurement_id column — is byte-equal to a worker sharing the
        # parent deployment (what fork provides).
        from repro.core import shard as shard_module

        parent = small_deployment("batch", visits=256)
        epoch = parent.next_campaign_epoch()
        signature = campaign_signature(parent, epoch, 256)
        assignment = ShardPlanner(256, 128, 2).plan()[0]
        shared_manifest = execute_shard(
            parent, assignment, epoch, 256, tmp_path / "shared", signature
        )
        assert shard_module._FORK_DEPLOYMENT is None
        rebuilt_path = shard_module.shard_worker(
            {
                "assignment": assignment,
                "epoch": epoch,
                "visits": 256,
                "shard_dir": tmp_path / "rebuilt",
                "signature": signature,
                "world_config": parent.world.config,
                "campaign_config": parent.config,
                "task_ids": [
                    t.measurement_id
                    for pool in parent.scheduler.pools
                    for t in pool.tasks
                ],
                "visit_base": 0,
            }
        )

        def rows_of(manifest):
            store = MeasurementStore()
            StoreMerger(store).merge([manifest])
            return [
                (m.measurement_id, str(m.target_url), m.client_ip, m.country_code,
                 m.outcome, m.elapsed_ms, m.day)
                for m in store.rows()
            ]

        rebuilt_manifest = json.loads(Path(rebuilt_path).read_text())
        assert rows_of(rebuilt_manifest) == rows_of(shared_manifest)

    def test_execute_shard_writes_committing_manifest(self, tmp_path):
        deployment = small_deployment("batch", visits=256)
        epoch = deployment.next_campaign_epoch()
        signature = campaign_signature(deployment, epoch, 256)
        assignment = ShardPlanner(256, 128, 2).plan()[0]
        manifest = execute_shard(
            deployment, assignment, epoch, 256, tmp_path / "shard-000", signature
        )
        on_disk = json.loads((tmp_path / "shard-000" / MANIFEST_NAME).read_text())
        assert on_disk == manifest
        assert manifest["signature"] == signature
        assert [b["block"] for b in manifest["blocks"]] == list(assignment.block_indices)
        for block in manifest["blocks"]:
            for segment in block["segments"]:
                assert Path(segment["path"]).is_file()
        assert manifest["counters"]["stored"] == sum(
            b["rows"] for b in manifest["blocks"]
        )
        assert load_manifest(tmp_path / "shard-000", signature, assignment) is not None


class TestStoreMerger:
    """Segment adoption reconciles dictionary codes across writer stores."""

    @staticmethod
    def measurement(domain, country, outcome=TaskOutcome.SUCCESS, ip="10.0.0.1"):
        from repro.core.collection import Measurement

        return Measurement(
            measurement_id=f"m-{domain}-{country}",
            task_type=TaskType.IMAGE,
            target_url=URL.parse(f"http://{domain}/favicon.ico"),
            target_domain=domain,
            outcome=outcome,
            elapsed_ms=12.5,
            client_ip=ip,
            country_code=country,
            isp=f"{country.lower()}-isp-1",
            browser_family="chrome",
            origin_domain=None,
            day=3,
        )

    def manifest_for(self, store: MeasurementStore, block: int) -> dict:
        store.spill()
        tables = store.value_tables()
        return {
            "shard_index": block,
            "value_tables": {
                kind: ([str(u) for u in values] if kind == "url" else values)
                for kind, values in tables.items()
            },
            "blocks": [
                {
                    "block": block,
                    "visits": len(store),
                    "rows": len(store),
                    "segments": [
                        {"path": str(path), "rows": len(store)}
                        for path in store.segment_files
                    ],
                }
            ],
        }

    def test_adoption_translates_codes_between_stores(self, tmp_path):
        # Two writers see the same values in *different* insertion orders,
        # so their integer codes disagree; adoption must reconcile them.
        first = MeasurementStore(spill_dir=tmp_path / "a")
        first.append_rows([
            self.measurement("alpha.org", "DE"),
            self.measurement("beta.org", "IR", outcome=TaskOutcome.FAILURE),
        ])
        second = MeasurementStore(spill_dir=tmp_path / "b")
        second.append_rows([
            self.measurement("beta.org", "IR"),
            self.measurement("alpha.org", "DE", outcome=TaskOutcome.FAILURE, ip="10.0.0.2"),
        ])
        merged = MeasurementStore()
        merger = StoreMerger(merged)
        adopted = merger.merge([self.manifest_for(first, 0), self.manifest_for(second, 1)])
        assert adopted == len(merged) == 4
        rows = merged.rows()
        assert [(m.target_domain, m.country_code, m.outcome) for m in rows] == [
            ("alpha.org", "DE", TaskOutcome.SUCCESS),
            ("beta.org", "IR", TaskOutcome.FAILURE),
            ("beta.org", "IR", TaskOutcome.SUCCESS),
            ("alpha.org", "DE", TaskOutcome.FAILURE),
        ]
        assert all(isinstance(m.target_url, URL) for m in rows)
        # Grouped queries see one coherent code space.
        counts = grouped_success_counts(merged, exclude_automated=False).as_dict()
        assert counts[("alpha.org", "DE")] == (2, 1)
        assert counts[("beta.org", "IR")] == (2, 1)

    def test_adoption_does_not_copy_rows(self, tmp_path):
        store = MeasurementStore(spill_dir=tmp_path)
        store.append_rows([self.measurement("alpha.org", "DE")])
        manifest = self.manifest_for(store, 0)
        merged = MeasurementStore()
        StoreMerger(merged).merge([manifest])
        # The merged store mounts the writer's file in place.
        assert merged.segment_files == store.segment_files
        assert merged.rows_in_memory == 0

    def test_adopted_store_streams_success_counts(self, tmp_path):
        # Streaming aggregation over adopted segments never concatenates
        # the corpus; verify against a row-built reference store.
        writers = []
        for index in range(3):
            writer = MeasurementStore(spill_dir=tmp_path / str(index))
            writer.append_rows([
                self.measurement("alpha.org", "DE"),
                self.measurement("beta.org", "IR",
                                 outcome=TaskOutcome.FAILURE if index else TaskOutcome.SUCCESS),
            ])
            writers.append(self.manifest_for(writer, index))
        merged = MeasurementStore()
        StoreMerger(merged).merge(writers)
        reference = MeasurementStore()
        reference.append_rows(merged.rows())
        assert (
            grouped_success_counts(merged, exclude_automated=False).as_dict()
            == grouped_success_counts(reference, exclude_automated=False).as_dict()
        )


class TestCollectionServerStoreArgument:
    def test_explicit_empty_store_is_used(self):
        # Regression: an empty MeasurementStore is falsy, and ``store or
        # default`` used to silently replace it — shard workers pass a
        # fresh (empty) spilling store and must get their rows back.
        store = MeasurementStore()
        server = CollectionServer(
            "http://collector.encore-measurement.org/submit", store=store
        )
        assert server.store is store


class TestDefaultShardCount:
    """``num_shards=None`` resolves CPU- and topology-aware (ROADMAP item)."""

    def test_default_caps_by_blocks_and_ceiling(self, monkeypatch):
        from repro.core import shard as shard_module

        monkeypatch.setattr(shard_module, "available_cpu_count", lambda: 6)
        assert shard_module.default_num_shards(block_count=40) == 6
        assert shard_module.default_num_shards(block_count=3) == 3
        assert shard_module.default_num_shards(block_count=0) == 1
        monkeypatch.setattr(shard_module, "available_cpu_count", lambda: 128)
        assert shard_module.default_num_shards(block_count=10_000) == \
            shard_module.MAX_DEFAULT_SHARDS

    def test_available_cpu_count_prefers_affinity(self, monkeypatch):
        from repro.core import shard as shard_module

        monkeypatch.setattr(shard_module.os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert shard_module.available_cpu_count() == 3
        monkeypatch.delattr(shard_module.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(shard_module.os, "cpu_count", lambda: None)
        assert shard_module.available_cpu_count() == 1

    def test_unset_shard_count_records_resolved_default(self, tmp_path, monkeypatch):
        # The campaign file records the resolved default (capped by the
        # block count), and the <4-core semantics stay what they were: on
        # this container the default is simply 1.
        from repro.core import shard as shard_module

        monkeypatch.setattr(shard_module, "available_cpu_count", lambda: 2)
        deployment = small_deployment("sharded", worker_spill_dir=str(tmp_path))
        result = deployment.run_campaign(shard_executor="inline")
        campaign_files = list(Path(tmp_path).glob("campaign-*/campaign.json"))
        assert len(campaign_files) == 1
        recorded = json.loads(campaign_files[0].read_text())
        assert recorded["num_shards"] == 2
        reference = small_deployment("batch").run_campaign()
        assert measurement_key(result) == measurement_key(reference)


class TestWriteJsonAtomic:
    """Durability contract: a committed .json is whole or absent, never partial."""

    def test_round_trip_and_no_scratch_left_behind(self, tmp_path):
        path = tmp_path / "manifest.json"
        payload = {"blocks": [1, 2, 3], "rate": 0.25}
        returned = write_json_atomic(path, payload)
        assert returned == path
        assert json.loads(path.read_text()) == payload
        assert list(tmp_path.glob("*.tmp")) == []

    def test_scratch_is_fsynced_before_the_rename(self, tmp_path, monkeypatch):
        from repro.core import shard as shard_module

        events = []
        real_fsync, real_replace = shard_module.os.fsync, shard_module.os.replace
        monkeypatch.setattr(
            shard_module.os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            shard_module.os,
            "replace",
            lambda src, dst: (events.append("replace"), real_replace(src, dst)),
        )
        write_json_atomic(tmp_path / "manifest.json", {"ok": True})
        # File fsync strictly precedes the commit rename; the directory
        # entry is flushed after it.
        assert events[0] == "fsync"
        assert "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_failed_commit_leaves_no_partial_json(self, tmp_path, monkeypatch):
        from repro.core import shard as shard_module

        path = tmp_path / "manifest.json"

        def explode(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(shard_module.os, "replace", explode)
        with pytest.raises(OSError, match="injected"):
            write_json_atomic(path, {"rows": 7})
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_commit_preserves_the_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        from repro.core import shard as shard_module

        path = tmp_path / "manifest.json"
        write_json_atomic(path, {"epoch": 1})

        def explode(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(shard_module.os, "replace", explode)
        with pytest.raises(OSError, match="injected"):
            write_json_atomic(path, {"epoch": 2})
        assert json.loads(path.read_text()) == {"epoch": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unserializable_payload_touches_nothing(self, tmp_path):
        path = tmp_path / "manifest.json"
        with pytest.raises(TypeError):
            write_json_atomic(path, {"store": object()})
        assert list(tmp_path.iterdir()) == []
