"""The columnar MeasurementStore vs. the seed row-list semantics.

The store replaced the collection server's ``list[Measurement]`` with
struct-of-arrays storage; these tests pin the redesign's compatibility
contract: every query (``select``/``filtered``, ``success_counts``, the
distinct counters, detection) must agree with the seed row-list
implementations — reproduced here as reference functions — on arbitrary
corpora, with and without spilling segments to disk.
"""

import tempfile
from collections import Counter, defaultdict
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collection import CollectionServer, Measurement
from repro.core.inference import (
    AdaptiveFilteringDetector,
    BinomialFilteringDetector,
    binomial_cdf,
    binomial_cdf_cells,
)
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.store import DayGroupedCounts, GroupedCounts, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.population.geoip import GeoIPDatabase
from repro.population.world import World, WorldConfig
from repro.web.url import URL

# This module is the deprecated legacy reductions' equivalence pin: it
# calls the MeasurementStore shims ON PURPOSE to keep them row-identical
# to the seed semantics until removal.  The deprecation chatter is
# acknowledged and silenced here — anywhere else, a shim call is a
# straggler to migrate to the query kernel.
pytestmark = pytest.mark.filterwarnings(
    r"ignore:MeasurementStore\.:DeprecationWarning"
)


# ----------------------------------------------------------------------
# Seed reference implementations (the pre-store row-list semantics)
# ----------------------------------------------------------------------
def reference_filtered(measurements, domain=None, country_code=None, task_type=None,
                       exclude_automated=True, exclude_inconclusive=True):
    result = []
    for m in measurements:
        if exclude_automated and m.is_automated:
            continue
        if exclude_inconclusive and m.outcome is TaskOutcome.INCONCLUSIVE:
            continue
        if domain is not None and m.target_domain != domain:
            continue
        if country_code is not None and m.country_code != country_code:
            continue
        if task_type is not None and m.task_type is not task_type:
            continue
        result.append(m)
    return result


def reference_success_counts(measurements, exclude_automated=True):
    totals = defaultdict(int)
    successes = defaultdict(int)
    for m in measurements:
        if exclude_automated and m.is_automated:
            continue
        if m.outcome is TaskOutcome.INCONCLUSIVE:
            continue
        key = (m.target_domain, m.country_code)
        totals[key] += 1
        if m.succeeded:
            successes[key] += 1
    return {key: (totals[key], successes[key]) for key in totals}


def reference_day_counts(measurements, exclude_automated=True):
    """The row-list semantics of ``success_counts(by_day=True)``."""
    totals = defaultdict(int)
    successes = defaultdict(int)
    for m in measurements:
        if exclude_automated and m.is_automated:
            continue
        if m.outcome is TaskOutcome.INCONCLUSIVE:
            continue
        key = (m.target_domain, m.country_code, m.day)
        totals[key] += 1
        if m.succeeded:
            successes[key] += 1
    return {key: (totals[key], successes[key]) for key in totals}


def reference_detect(counts, success_prior=0.7, significance=0.05, min_measurements=10):
    """The seed scalar detection loop, returning the detected pairs."""
    stats = []
    for (domain, country), (n, successes) in sorted(counts.items()):
        if n < min_measurements:
            continue
        stats.append((domain, country, n, successes,
                      binomial_cdf(successes, n, success_prior)))
    by_domain = defaultdict(list)
    for stat in stats:
        by_domain[stat[0]].append(stat)
    detected = set()
    for domain, domain_stats in by_domain.items():
        failing = [s for s in domain_stats if s[4] <= significance]
        passing = [
            s for s in domain_stats
            if s[4] > significance and (s[3] / s[2] if s[2] else 0.0) >= success_prior
        ]
        if not failing or not passing:
            continue
        for stat in failing:
            detected.add((stat[0], stat[1]))
    return detected


# ----------------------------------------------------------------------
# Random corpora
# ----------------------------------------------------------------------
DOMAINS = ("facebook.com", "youtube.com", "twitter.com", "host-00.encore-testbed.net")
COUNTRIES = ("US", "CN", "IR", "PK", "DE")
ISPS = ("us-isp-1", "cn-isp-2", "attacker")
FAMILIES = ("chrome", "firefox", "ie")


@st.composite
def measurements(draw):
    domain = draw(st.sampled_from(DOMAINS))
    country = draw(st.sampled_from(COUNTRIES))
    task_type = draw(st.sampled_from(list(TaskType)))
    probe = draw(st.one_of(st.none(), st.floats(min_value=0.0, max_value=500.0)))
    return Measurement(
        measurement_id=f"m{draw(st.integers(min_value=0, max_value=30))}",
        task_type=task_type,
        target_url=URL.parse(f"http://{domain}/favicon.ico"),
        target_domain=domain,
        outcome=draw(st.sampled_from(list(TaskOutcome))),
        elapsed_ms=draw(st.floats(min_value=0.0, max_value=5000.0)),
        client_ip=f"10.0.{draw(st.integers(min_value=0, max_value=40))}.7",
        country_code=country,
        isp=draw(st.sampled_from(ISPS)),
        browser_family=draw(st.sampled_from(FAMILIES)),
        origin_domain=draw(st.one_of(st.none(), st.sampled_from(("origin-00.example.edu", "origin-01.example.edu")))),
        day=draw(st.integers(min_value=0, max_value=29)),
        probe_time_ms=probe,
        is_automated=draw(st.booleans()),
    )


corpora = st.lists(measurements(), max_size=60)

filter_combos = st.fixed_dictionaries(
    {
        "domain": st.one_of(st.none(), st.sampled_from(DOMAINS)),
        "country_code": st.one_of(st.none(), st.sampled_from(COUNTRIES + ("XX",))),
        "task_type": st.one_of(st.none(), st.sampled_from(list(TaskType))),
        "exclude_automated": st.booleans(),
        "exclude_inconclusive": st.booleans(),
    }
)


class TestStoreMatchesRowListSemantics:
    @given(corpus=corpora, combo=filter_combos)
    @settings(max_examples=60, deadline=None)
    def test_select_equals_seed_filtered(self, corpus, combo):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        assert store.select(**combo).materialize() == reference_filtered(corpus, **combo)

    @given(corpus=corpora, exclude_automated=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_success_counts_equal_seed(self, corpus, exclude_automated):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        grouped = store.success_counts(exclude_automated=exclude_automated)
        assert grouped.as_dict() == reference_success_counts(corpus, exclude_automated)

    @given(corpus=corpora)
    @settings(max_examples=40, deadline=None)
    def test_rows_round_trip_field_for_field(self, corpus):
        store = MeasurementStore(segment_rows=8)
        store.append_rows(corpus)
        assert store.rows() == corpus

    @given(corpus=corpora, combo=filter_combos)
    @settings(max_examples=30, deadline=None)
    def test_spilled_store_answers_identically(self, corpus, combo):
        with tempfile.TemporaryDirectory() as tmp:
            store = MeasurementStore(segment_rows=8, max_rows_in_memory=8, spill_dir=tmp)
            store.append_rows(corpus)
            store.spill()
            if corpus:
                assert store.segment_files, "expected .npz segments on disk"
                assert store.rows_in_memory == 0
            assert store.rows() == corpus
            assert store.select(**combo).materialize() == reference_filtered(corpus, **combo)
            assert store.success_counts().as_dict() == reference_success_counts(corpus)

    def test_spilling_many_resident_segments_at_once_keeps_rows(self, tmp_path):
        # Regression: spilling several resident segments in one call must
        # write one .npz per segment, not overwrite a single path.
        corpus = TestDerivedCaches().make_corpus(30)
        store = MeasurementStore(segment_rows=10, spill_dir=tmp_path)
        for start in (0, 10, 20):
            store.append_rows(corpus[start:start + 10])
        assert store.spill() == 3
        assert len(store.segment_files) == 3
        assert len(set(store.segment_files)) == 3
        assert store.rows() == corpus

    def test_stores_sharing_a_spill_dir_do_not_collide(self, tmp_path):
        # Regression: two stores pointed at one spill_dir (e.g. a sweep's
        # campaigns) must not overwrite each other's segment files.
        first_corpus = TestDerivedCaches().make_corpus(10)
        second_corpus = [
            Measurement(**{**m.__dict__, "measurement_id": f"other-{i}"})
            for i, m in enumerate(TestDerivedCaches().make_corpus(10))
        ]
        first = MeasurementStore(spill_dir=tmp_path)
        second = MeasurementStore(spill_dir=tmp_path)
        first.append_rows(first_corpus)
        second.append_rows(second_corpus)
        first.spill()
        second.spill()
        assert first.rows() == first_corpus
        assert second.rows() == second_corpus

    @given(corpus=corpora)
    @settings(max_examples=40, deadline=None)
    def test_distinct_counters_equal_seed(self, corpus):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        assert store.distinct_ips() == len({m.client_ip for m in corpus})
        assert store.distinct_countries() == len({m.country_code for m in corpus})
        assert store.measurements_by_country() == Counter(m.country_code for m in corpus)

    @given(corpus=corpora)
    @settings(max_examples=30, deadline=None)
    def test_distinct_ips_streams_spilled_segments(self, corpus):
        # Spill-aware path: per-segment uniques folded into one set, never
        # concatenating the full string column across segments.
        with tempfile.TemporaryDirectory() as tmp:
            store = MeasurementStore(segment_rows=8, max_rows_in_memory=8, spill_dir=tmp)
            store.append_rows(corpus)
            store.spill()
            assert store.distinct_ips() == len({m.client_ip for m in corpus})
            # The count is cached until the next append invalidates it.
            assert store.distinct_ips() == len({m.client_ip for m in corpus})

    @given(corpus=corpora, exclude_automated=st.booleans(), mask_seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_masked_success_counts_equal_seed_subset(self, corpus, exclude_automated, mask_seed):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        mask = np.random.default_rng(mask_seed).random(len(corpus)) < 0.6
        grouped = store.masked_success_counts(mask, exclude_automated=exclude_automated)
        kept_rows = [m for m, keep in zip(corpus, mask.tolist()) if keep]
        assert grouped.as_dict() == reference_success_counts(kept_rows, exclude_automated)

    def test_masked_success_counts_rejects_misaligned_mask(self):
        store = MeasurementStore()
        store.append_rows(TestDerivedCaches().make_corpus(4))
        with pytest.raises(ValueError):
            store.masked_success_counts(np.ones(3, dtype=bool))


class TestDayBucketedCounts:
    """``success_counts(by_day=True)`` vs. the row-list reference, everywhere."""

    @given(corpus=corpora, exclude_automated=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_by_day_equals_reference(self, corpus, exclude_automated):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        grouped = store.success_counts(exclude_automated=exclude_automated, by_day=True)
        assert grouped.as_dict() == reference_day_counts(corpus, exclude_automated)
        if len(grouped):
            assert grouped.n_days > int(grouped.days.max())

    @given(corpus=corpora, exclude_automated=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_by_day_streams_spilled_segments(self, corpus, exclude_automated):
        with tempfile.TemporaryDirectory() as tmp:
            store = MeasurementStore(segment_rows=8, max_rows_in_memory=8, spill_dir=tmp)
            store.append_rows(corpus)
            store.spill()
            if corpus:
                assert store.segment_files and store.rows_in_memory == 0
            grouped = store.success_counts(
                exclude_automated=exclude_automated, by_day=True
            )
            assert grouped.as_dict() == reference_day_counts(corpus, exclude_automated)

    def test_by_day_on_adopted_segments(self, tmp_path):
        """Adopted segments bucket by day through their code remaps."""
        own = TestStoreAdoption().make_corpus(18, "own")
        other_rows = TestStoreAdoption().make_corpus(33, "other")
        other = MeasurementStore(segment_rows=10, spill_dir=tmp_path)
        other.append_rows(other_rows)
        other.spill()
        store = MeasurementStore(segment_rows=10)
        store.append_rows(own)
        store.adopt_segments_from(other)
        grouped = store.success_counts(by_day=True)
        assert grouped.as_dict() == reference_day_counts(own + other_rows)
        # A foreign manifest-style adoption (explicit path + remap) too.
        mounted = MeasurementStore()
        for path in other.segment_files:
            with np.load(path) as data:
                length = int(len(data["day"]))
            remap = {
                kind: mounted.merge_value_table(kind, values)
                for kind, values in other.value_tables().items()
            }
            mounted.adopt_spilled_segment(path, length, remap=remap)
        assert mounted.success_counts(by_day=True).as_dict() == reference_day_counts(
            other_rows
        )

    @given(
        corpus=corpora,
        exclude_automated=st.booleans(),
        segment_rows=st.integers(min_value=1, max_value=16),
        by_day=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_incremental_fold_matches_cold_scan(
        self, corpus, exclude_automated, segment_rows, by_day
    ):
        """Interleaved append/seal/query folds bit-identical to one cold pass.

        The incremental path folds each sealed segment exactly once and
        re-folds pending rows per call; querying between appends (on a
        spilled store, so segments stream back off disk) must leave the
        final answer identical to a fresh store's single full scan.
        """
        with tempfile.TemporaryDirectory() as tmp:
            store = MeasurementStore(
                segment_rows=segment_rows, max_rows_in_memory=segment_rows, spill_dir=tmp
            )
            step = max(1, len(corpus) // 5)
            for start in range(0, len(corpus), step):
                store.append_rows(corpus[start:start + step])
                store.success_counts(exclude_automated, by_day=by_day)
                if start % (2 * step) == 0:
                    store.seal_pending()
                    store.success_counts(exclude_automated, by_day=by_day)
            cold = MeasurementStore()
            cold.append_rows(corpus)
            incremental = store.success_counts(exclude_automated, by_day=by_day)
            reference = cold.success_counts(exclude_automated, by_day=by_day)
            assert incremental.as_dict() == reference.as_dict()
            if by_day:
                assert incremental.n_days == reference.n_days
                assert incremental.as_dict() == reference_day_counts(
                    corpus, exclude_automated
                )
                # The dense monitor-loop accessor rides the same accumulator
                # and must present the exact same cells in the same order as
                # the ragged representation densified.
                dense = store.success_day_series(exclude_automated)
                ragged = reference.cell_series()
                assert dense.n_days == reference.n_days
                for mine, theirs in zip(dense.cell_series(), ragged):
                    assert np.array_equal(mine, theirs)
            # After any cache-missing query, the fold watermark covers every
            # sealed segment exactly once.
            if corpus:
                store.append_rows(corpus[:1])
                store.success_counts(exclude_automated, by_day=by_day)
                assert store._query_states
                assert all(
                    state.segments_folded == len(store._segments)
                    for state in store._query_states.values()
                )

    @given(corpus=corpora, split=st.integers(min_value=0, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_incremental_fold_across_adoption(self, corpus, split):
        """Adopting a store mid-stream keeps the incremental fold exact.

        Queries before the merge prime the fold state; the adopted segments
        (pre-merge pending chunks included, read through their code remaps)
        must then fold in once, and later appends on top of the merged store
        must keep agreeing with the row-list reference.
        """
        split = min(split, len(corpus))
        own, other_rows = corpus[:split], corpus[split:]
        other = MeasurementStore(segment_rows=7)
        other.append_rows(other_rows)
        store = MeasurementStore(segment_rows=5)
        store.append_rows(own)
        store.success_counts(by_day=True)  # prime the fold state pre-merge
        store.success_counts()
        store.adopt_segments_from(other)
        assert store.success_counts(by_day=True).as_dict() == reference_day_counts(
            corpus
        )
        assert store.success_counts().as_dict() == reference_success_counts(corpus)
        store.append_rows(own)  # keep growing after the merge
        assert store.success_counts(by_day=True).as_dict() == reference_day_counts(
            corpus + own
        )

    @given(corpus=corpora, exclude_automated=st.booleans(), mask_seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_masked_by_day_equals_reference_subset(self, corpus, exclude_automated, mask_seed):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        mask = np.random.default_rng(mask_seed).random(len(corpus)) < 0.6
        grouped = store.masked_success_counts(
            mask, exclude_automated=exclude_automated, by_day=True
        )
        kept_rows = [m for m, keep in zip(corpus, mask.tolist()) if keep]
        assert grouped.as_dict() == reference_day_counts(kept_rows, exclude_automated)

    @given(corpus=corpora)
    @settings(max_examples=30, deadline=None)
    def test_cell_series_round_trips_the_cells(self, corpus):
        store = MeasurementStore(segment_rows=16)
        store.append_rows(corpus)
        grouped = store.success_counts(by_day=True)
        domains, countries, totals, successes = grouped.cell_series()
        assert totals.shape == (len(domains), grouped.n_days)
        rebuilt = {}
        for index, (domain, country) in enumerate(zip(domains.tolist(), countries.tolist())):
            for day in range(grouped.n_days):
                if totals[index, day]:
                    rebuilt[(domain, country, day)] = (
                        int(totals[index, day]), int(successes[index, day])
                    )
        assert rebuilt == grouped.as_dict()

    def test_from_dict_round_trip(self):
        counts = {("a.org", "DE", 3): (10, 7), ("a.org", "DE", 0): (4, 4),
                  ("b.org", "CN", 1): (8, 1)}
        grouped = DayGroupedCounts.from_dict(counts)
        assert grouped.as_dict() == counts
        assert grouped.n_days == 4

    def test_from_dict_rejects_truncating_n_days(self):
        counts = {("a.org", "DE", 5): (3, 1)}
        with pytest.raises(ValueError):
            DayGroupedCounts.from_dict(counts, n_days=3)
        # Widening beyond the data is fine (trailing empty days).
        widened = DayGroupedCounts.from_dict(counts, n_days=10)
        assert widened.n_days == 10
        assert widened.cell_series()[2].shape == (1, 10)

    def test_by_day_growing_day_axis_across_ordered_chunks(self):
        """Day-ordered ingestion (the longitudinal pattern) grows the
        accumulator's day axis geometrically without losing cells."""
        store = MeasurementStore(segment_rows=4)
        corpus = []
        base = TestDerivedCaches().make_corpus(4)
        for day in range(9):
            chunk = [
                Measurement(**{**m.__dict__, "day": day,
                               "measurement_id": f"d{day}-{i}"})
                for i, m in enumerate(base)
            ]
            corpus.extend(chunk)
            store.append_rows(chunk)
        grouped = store.success_counts(by_day=True)
        assert grouped.as_dict() == reference_day_counts(corpus)
        assert grouped.n_days == 9


class TestStoreAdoption:
    """``adopt_segments_from``: zero-copy mounting of another store's rows."""

    def make_corpus(self, n, tag):
        base = TestDerivedCaches().make_corpus(n)
        return [
            Measurement(**{**m.__dict__, "measurement_id": f"{tag}-{i}"})
            for i, m in enumerate(base)
        ]

    @pytest.mark.parametrize("spill_other", [False, True])
    def test_adopted_rows_follow_own_rows(self, tmp_path, spill_other):
        own = self.make_corpus(12, "own")
        other_rows = self.make_corpus(25, "other")
        other = MeasurementStore(segment_rows=10, spill_dir=tmp_path)
        other.append_rows(other_rows)
        if spill_other:
            other.spill()
        store = MeasurementStore()
        store.append_rows(own)
        assert store.adopt_segments_from(other) == len(other_rows)
        assert len(store) == len(own) + len(other_rows)
        assert store.rows() == own + other_rows
        assert store.success_counts().as_dict() == reference_success_counts(own + other_rows)
        assert store.distinct_ips() == len({m.client_ip for m in own + other_rows})
        # The source store is untouched and stays independently usable.
        assert other.rows() == other_rows

    def test_adoption_composes_remaps_of_merged_stores(self, tmp_path):
        # other itself adopted a spilled segment from a third store, so its
        # codes need two hops of translation when adopted onward.
        third_rows = self.make_corpus(10, "third")
        third = MeasurementStore(spill_dir=tmp_path / "third")
        third.append_rows(third_rows)
        third.spill()
        other = MeasurementStore()
        other_rows = self.make_corpus(5, "other")
        other.append_rows(other_rows)
        remap = {
            kind: other.merge_value_table(kind, values)
            for kind, values in third.value_tables().items()
        }
        for path in third.segment_files:
            other.adopt_spilled_segment(path, 10, remap=remap)
        store = MeasurementStore()
        store.append_rows(self.make_corpus(3, "own"))
        store.adopt_segments_from(other)
        assert store.rows()[3:] == other_rows + third_rows

    def test_adopting_pending_rows_shares_chunks(self):
        other = MeasurementStore()  # never sealed: everything stays pending
        other_rows = self.make_corpus(7, "pending")
        other.append_rows(other_rows)
        store = MeasurementStore()
        store.adopt_segments_from(other)
        assert store.rows() == other_rows

    def test_store_cannot_adopt_itself(self):
        store = MeasurementStore()
        with pytest.raises(ValueError):
            store.adopt_segments_from(store)

    def test_adopter_outlives_source_store_cleanup(self, tmp_path):
        # Regression: cleanup hooks keyed to the source store's lifetime
        # (the sharded runner reclaims unnamed temp spill roots when its
        # store is collected) must not delete segments an adopter still
        # reads — the adopter holds the source alive.
        import gc
        import weakref

        rows = self.make_corpus(10, "src")
        source = MeasurementStore(spill_dir=tmp_path)
        source.append_rows(rows)
        source.spill()
        weakref.finalize(source, lambda: (tmp_path / "reaped").touch())
        store = MeasurementStore()
        store.adopt_segments_from(source)
        del source
        gc.collect()
        assert not (tmp_path / "reaped").exists()
        assert store.rows() == rows


class TestDerivedCaches:
    def make_corpus(self, n=20):
        rng = np.random.default_rng(5)
        return [
            Measurement(
                measurement_id=f"m{i}",
                task_type=TaskType.IMAGE,
                target_url=URL.parse("http://facebook.com/favicon.ico"),
                target_domain="facebook.com",
                outcome=TaskOutcome.SUCCESS if rng.random() < 0.7 else TaskOutcome.FAILURE,
                elapsed_ms=float(rng.uniform(10, 100)),
                client_ip=f"10.0.0.{i}",
                country_code="US" if i % 2 else "CN",
                isp="isp",
                browser_family="chrome",
                origin_domain=None,
                day=0,
            )
            for i in range(n)
        ]

    def test_caches_hit_until_append_invalidates(self):
        corpus = self.make_corpus()
        store = MeasurementStore()
        store.append_rows(corpus)
        by_country = store.measurements_by_country()
        assert store.measurements_by_country() is by_country          # cache hit
        assert store.success_counts() is store.success_counts()
        ips_before = store.distinct_ips()
        extra = self.make_corpus()[0]
        extra = Measurement(**{**extra.__dict__, "client_ip": "10.9.9.9",
                               "country_code": "IR", "measurement_id": "fresh"})
        store.append_rows([extra])                                     # invalidates
        assert store.distinct_ips() == ips_before + 1
        assert store.measurements_by_country()["IR"] == 1
        assert store.measurements_by_country() is not by_country

    def test_collection_measurements_snapshot_is_cached(self):
        server = CollectionServer("http://collector.encore-measurement.org/submit")
        server.ingest_measurements(self.make_corpus())
        first = server.measurements
        assert server.measurements is first
        server.ingest_measurements(self.make_corpus(1))
        assert server.measurements is not first
        assert len(server.measurements) == 21


class TestGeoIPBatchLookup:
    @given(
        ips=st.lists(
            st.one_of(
                st.builds(
                    lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
                    st.integers(min_value=9, max_value=13),
                    st.integers(min_value=0, max_value=255),
                    st.integers(min_value=0, max_value=255),
                    st.integers(min_value=0, max_value=255),
                ),
                st.sampled_from(("not-an-ip", "10.0", "10.0.1", "10.0.1.2.3", "a.b.c.d")),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lookup_batch_equals_scalar_lookup(self, ips):
        batch_db = GeoIPDatabase()
        scalar_db = GeoIPDatabase()
        assert batch_db.lookup_batch(ips) == [scalar_db.lookup(ip) for ip in ips]

    def test_allocated_ips_geolocate_back(self):
        db = GeoIPDatabase()
        ips = db.allocate_ips("IR", 1000) + db.allocate_ips("US", 10)
        assert db.lookup_batch(ips) == ["IR"] * 1000 + ["US"] * 10


class TestVectorizedDetectorMatchesSeed:
    @st.composite
    def counts_tables(draw):
        n_domains = draw(st.integers(min_value=1, max_value=3))
        n_regions = draw(st.integers(min_value=1, max_value=6))
        counts = {}
        for d in range(n_domains):
            for r in range(n_regions):
                if draw(st.booleans()):
                    trials = draw(st.integers(min_value=1, max_value=200))
                    counts[(f"site-{d}.org", f"C{r}")] = (
                        trials, draw(st.integers(min_value=0, max_value=trials))
                    )
        return counts

    @given(counts=counts_tables())
    @settings(max_examples=80, deadline=None)
    def test_detect_from_counts_matches_seed_scalar_path(self, counts):
        detector = BinomialFilteringDetector(min_measurements=5)
        report = detector.detect_from_counts(counts)
        assert report.detected_pairs() == reference_detect(
            counts, detector.success_prior, detector.significance, detector.min_measurements
        )
        for stat in report.statistics:
            expected = binomial_cdf(stat.successes, stat.measurements, detector.success_prior)
            assert stat.p_value == pytest.approx(expected, rel=1e-12, abs=1e-300)

    @given(counts=counts_tables())
    @settings(max_examples=60, deadline=None)
    def test_adaptive_cell_priors_match_country_priors(self, counts):
        detector = AdaptiveFilteringDetector(min_measurements=5)
        priors = detector.country_priors(counts)
        for stat in detector.region_statistics(counts):
            prior = priors.get(stat.country_code, detector.success_prior)
            expected = binomial_cdf(stat.successes, stat.measurements, prior)
            assert stat.p_value == pytest.approx(expected, rel=1e-12, abs=1e-300)

    def test_cells_evaluator_edge_cases(self):
        successes = np.array([-1, 10, 5, 5, 0])
        trials = np.array([10, 10, 10, 10, 0])
        p = np.array([0.5, 0.5, 0.0, 1.0, 0.5])
        result = binomial_cdf_cells(successes, trials, p)
        expected = [binomial_cdf(s, n, q) for s, n, q in zip(successes, trials, p)]
        assert result.tolist() == pytest.approx(expected)
        with pytest.raises(ValueError):
            binomial_cdf_cells([1], [-1], 0.5)
        with pytest.raises(ValueError):
            binomial_cdf_cells([1], [2], 1.5)

    def test_grouped_counts_dict_round_trip(self):
        counts = {("b.org", "US"): (10, 7), ("a.org", "CN"): (5, 1), ("a.org", "US"): (8, 8)}
        grouped = GroupedCounts.from_dict(counts)
        assert grouped.as_dict() == counts
        assert [str(d) for d in grouped.domains] == ["a.org", "a.org", "b.org"]


def small_deployment(seed=11, visits=600, **config_kwargs):
    world = World(
        WorldConfig(seed=7, target_list_total=30, target_list_online=24, origin_site_count=4)
    )
    config = CampaignConfig(
        visits=visits, include_testbed=True, testbed_fraction=0.3, seed=seed,
        **config_kwargs,
    )
    return EncoreDeployment(world, config)


class TestCampaignBackedStore:
    def test_campaign_result_rows_match_seed_representation(self):
        """CampaignResult.measurements yields Measurement rows whose fields
        round-trip exactly through the columnar representation."""
        result = small_deployment().run_campaign()
        rows = result.measurements
        assert rows and all(isinstance(m, Measurement) for m in rows)
        # Re-ingesting the materialized rows into a fresh store and reading
        # them back must be the identity, field for field.
        round_trip = MeasurementStore()
        round_trip.append_rows(rows)
        assert round_trip.rows() == rows
        # And the store-backed queries agree with the seed row-list logic.
        collection = result.collection
        assert collection.filtered(domain="youtube.com", country_code="CN") == \
            reference_filtered(rows, domain="youtube.com", country_code="CN")
        assert collection.success_counts() == reference_success_counts(rows)
        assert collection.distinct_ips() == len({m.client_ip for m in rows})

    def test_record_returns_seed_identical_measurement(self):
        from repro.browser.profiles import BrowserProfile
        from repro.core.tasks import TaskResult
        from repro.netsim.latency import LinkQuality
        from repro.population.clients import Client

        geoip = GeoIPDatabase()
        server = CollectionServer("http://collector.encore-measurement.org/submit", geoip)
        client = Client(
            client_id=1, ip_address=geoip.allocate_ip("IR"), country_code="IR",
            isp="ir-isp-1", browser=BrowserProfile.chrome(), link=LinkQuality.broadband(),
            dwell_time_s=30.0,
        )
        url = URL.parse("http://facebook.com/favicon.ico")
        result = TaskResult(
            measurement_id="m1", task_type=TaskType.IMAGE, target_url=url,
            target_domain="facebook.com", outcome=TaskOutcome.SUCCESS, elapsed_ms=80.0,
        )
        stored = server.record(result, client, "origin-00.example.edu", day=3)
        expected = Measurement(
            measurement_id="m1", task_type=TaskType.IMAGE, target_url=url,
            target_domain="facebook.com", outcome=TaskOutcome.SUCCESS, elapsed_ms=80.0,
            client_ip=client.ip_address, country_code="IR", isp="ir-isp-1",
            browser_family="chrome", origin_domain="origin-00.example.edu", day=3,
            probe_time_ms=None, is_automated=False,
        )
        assert stored == expected
        assert server.measurements == [expected]

    def test_campaign_with_spill_matches_in_memory_campaign(self, tmp_path):
        baseline = small_deployment(seed=23).run_campaign()
        spilling = small_deployment(
            seed=23, max_rows_in_memory=150, spill_dir=str(tmp_path)
        ).run_campaign()
        store = spilling.collection.store
        assert store.segment_files and all(p.suffix == ".npz" for p in store.segment_files)
        assert all(Path(p).is_relative_to(tmp_path) for p in store.segment_files)

        # Identical rows minus the uuid4 task ids, which legitimately differ
        # between two independently built deployments.
        def key(rows):
            return [
                (str(m.target_url), m.task_type.value, m.country_code, m.outcome.value,
                 m.elapsed_ms, m.probe_time_ms, m.origin_domain, m.day, m.client_ip,
                 m.isp, m.browser_family, m.is_automated)
                for m in rows
            ]

        assert key(spilling.measurements) == key(baseline.measurements)
        assert spilling.detect().detected_pairs() == baseline.detect().detected_pairs()
        assert spilling.collection.success_counts() == baseline.collection.success_counts()

    def test_soundness_report_columnar_path_matches_row_path(self):
        from repro.analysis.reports import build_soundness_report

        deployment = small_deployment(seed=5, visits=800)
        result = deployment.run_campaign()
        from_rows = build_soundness_report(result.measurements, deployment.testbed)
        from_store = build_soundness_report(result.collection.store, deployment.testbed)
        assert from_store.total_measurements == from_rows.total_measurements
        for task_type, stats in from_rows.per_task_type.items():
            columnar = from_store.per_task_type[task_type]
            assert (columnar.true_positives, columnar.false_positives,
                    columnar.true_negatives, columnar.false_negatives) == (
                stats.true_positives, stats.false_positives,
                stats.true_negatives, stats.false_negatives)
