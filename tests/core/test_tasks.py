"""Tests for measurement tasks: Table 1 semantics and execution."""

import numpy as np
import pytest

from repro.browser.engine import Browser
from repro.browser.profiles import BrowserFamily, BrowserProfile
from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.core.tasks import (
    CACHED_PROBE_THRESHOLD_MS,
    MeasurementTask,
    TaskOutcome,
    TaskType,
    execute_task,
    measurement_snippet_js,
    origin_embed_html,
)
from repro.netsim.latency import LinkQuality
from repro.netsim.network import Network
from repro.web.resources import ContentType, Resource
from repro.web.server import WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


@pytest.fixture()
def universe():
    universe = WebUniverse()
    site = Site("censored.com")
    favicon = Resource(URL.parse("http://censored.com/favicon.ico"), ContentType.IMAGE, 600,
                       cacheable=True, cache_ttl_s=3600)
    sheet = Resource(URL.parse("http://censored.com/style.css"), ContentType.STYLESHEET, 1500,
                     cacheable=True, cache_ttl_s=3600)
    script = Resource(URL.parse("http://censored.com/app.js"), ContentType.SCRIPT, 2500, nosniff=True)
    site.add(favicon)
    site.add(sheet)
    site.add(script)
    page = Resource(URL.parse("http://censored.com/post.html"), ContentType.HTML, 6000,
                    embedded_urls=(favicon.url, sheet.url))
    site.add(page)
    universe.add_site(site)
    return universe


def make_browser(universe, family=BrowserFamily.CHROME, censored=False):
    interceptors = []
    if censored:
        interceptors.append(
            Censor("c", BlacklistPolicy.for_domains(["censored.com"]), FilteringMechanism.DNS_NXDOMAIN)
        )
    return Browser(
        profile=BrowserProfile.for_family(family),
        link=LinkQuality(rtt_ms=70, jitter_ms=0, loss_rate=0),
        network=Network(universe),
        rng=np.random.default_rng(0),
        interceptors=interceptors,
    )


class TestTaskTypeProperties:
    def test_explicit_feedback_classification(self):
        assert TaskType.IMAGE.gives_explicit_feedback
        assert TaskType.STYLE_SHEET.gives_explicit_feedback
        assert TaskType.SCRIPT.gives_explicit_feedback
        assert not TaskType.INLINE_FRAME.gives_explicit_feedback

    def test_only_script_requires_chrome(self):
        assert TaskType.SCRIPT.requires_chrome
        assert not TaskType.IMAGE.requires_chrome

    def test_page_testing_types(self):
        assert TaskType.INLINE_FRAME.tests_whole_pages
        assert not TaskType.IMAGE.tests_whole_pages


class TestMeasurementTaskConstruction:
    def test_new_assigns_measurement_id_and_domain(self):
        task = MeasurementTask.new(TaskType.IMAGE, "http://sub.censored.com/favicon.ico")
        assert task.measurement_id
        assert task.target_domain == "censored.com"

    def test_inline_frame_requires_probe(self):
        with pytest.raises(ValueError):
            MeasurementTask.new(TaskType.INLINE_FRAME, "http://censored.com/post.html")

    def test_fresh_ids_are_unique(self):
        ids = {MeasurementTask.new(TaskType.IMAGE, "http://a.com/i.png").measurement_id for _ in range(50)}
        assert len(ids) == 50

    def test_runnable_by_respects_browser_constraints(self):
        image_task = MeasurementTask.new(TaskType.IMAGE, "http://censored.com/favicon.ico")
        script_task = MeasurementTask.new(TaskType.SCRIPT, "http://censored.com/app.js")
        chrome = BrowserProfile.chrome()
        firefox = BrowserProfile.firefox()
        assert image_task.runnable_by(chrome) and image_task.runnable_by(firefox)
        assert script_task.runnable_by(chrome)
        assert not script_task.runnable_by(firefox)


class TestImageTaskExecution:
    def test_success_when_unfiltered(self, universe):
        task = MeasurementTask.new(TaskType.IMAGE, "http://censored.com/favicon.ico")
        result = execute_task(task, make_browser(universe))
        assert result.outcome is TaskOutcome.SUCCESS
        assert result.task_type is TaskType.IMAGE
        assert result.measurement_id == task.measurement_id

    def test_failure_when_filtered(self, universe):
        task = MeasurementTask.new(TaskType.IMAGE, "http://censored.com/favicon.ico")
        result = execute_task(task, make_browser(universe, censored=True))
        assert result.outcome is TaskOutcome.FAILURE

    def test_failure_for_unknown_resource(self, universe):
        task = MeasurementTask.new(TaskType.IMAGE, "http://censored.com/nothing.png")
        assert execute_task(task, make_browser(universe)).outcome is TaskOutcome.FAILURE


class TestStylesheetTaskExecution:
    def test_success_when_unfiltered(self, universe):
        task = MeasurementTask.new(TaskType.STYLE_SHEET, "http://censored.com/style.css")
        assert execute_task(task, make_browser(universe)).outcome is TaskOutcome.SUCCESS

    def test_failure_when_filtered(self, universe):
        task = MeasurementTask.new(TaskType.STYLE_SHEET, "http://censored.com/style.css")
        assert execute_task(task, make_browser(universe, censored=True)).outcome is TaskOutcome.FAILURE


class TestScriptTaskExecution:
    def test_success_on_chrome(self, universe):
        task = MeasurementTask.new(TaskType.SCRIPT, "http://censored.com/app.js")
        assert execute_task(task, make_browser(universe)).outcome is TaskOutcome.SUCCESS

    def test_failure_on_chrome_when_filtered(self, universe):
        task = MeasurementTask.new(TaskType.SCRIPT, "http://censored.com/app.js")
        assert execute_task(task, make_browser(universe, censored=True)).outcome is TaskOutcome.FAILURE

    def test_inconclusive_on_non_chrome(self, universe):
        task = MeasurementTask.new(TaskType.SCRIPT, "http://censored.com/app.js")
        result = execute_task(task, make_browser(universe, family=BrowserFamily.FIREFOX))
        assert result.outcome is TaskOutcome.INCONCLUSIVE
        assert result.detail == "browser_unsupported"


class TestInlineFrameTaskExecution:
    def make_task(self):
        return MeasurementTask.new(
            TaskType.INLINE_FRAME,
            "http://censored.com/post.html",
            probe_image_url="http://censored.com/favicon.ico",
        )

    def test_success_when_unfiltered(self, universe):
        result = execute_task(self.make_task(), make_browser(universe))
        assert result.outcome is TaskOutcome.SUCCESS
        assert result.probe_time_ms is not None
        assert result.probe_time_ms <= CACHED_PROBE_THRESHOLD_MS

    def test_failure_when_filtered(self, universe):
        result = execute_task(self.make_task(), make_browser(universe, censored=True))
        assert result.outcome is TaskOutcome.FAILURE

    def test_threshold_is_configurable(self, universe):
        # An absurdly generous threshold turns even uncached loads into
        # "success", demonstrating the ablation knob.
        result = execute_task(self.make_task(), make_browser(universe, censored=False),
                              cached_threshold_ms=10_000.0)
        assert result.outcome is TaskOutcome.SUCCESS


class TestSnippets:
    def test_origin_embed_is_one_line_and_small(self):
        snippet = origin_embed_html("http://coordinator.encore-measurement.org/task.js")
        assert "\n" not in snippet
        assert snippet.startswith("<script")
        assert len(snippet.encode()) <= 120

    def test_measurement_snippet_mentions_target_and_collector(self):
        task = MeasurementTask.new(TaskType.IMAGE, "http://censored.com/favicon.ico")
        js = measurement_snippet_js(task, "http://collector.encore-measurement.org/submit")
        assert "censored.com/favicon.ico" in js
        assert "collector.encore-measurement.org/submit" in js
        assert task.measurement_id in js
        assert "submit('init')" in js

    def test_snippet_shapes_differ_by_task_type(self, universe):
        collector = "http://collector.encore-measurement.org/submit"
        image_js = measurement_snippet_js(
            MeasurementTask.new(TaskType.IMAGE, "http://censored.com/favicon.ico"), collector)
        iframe_js = measurement_snippet_js(
            MeasurementTask.new(TaskType.INLINE_FRAME, "http://censored.com/post.html",
                                probe_image_url="http://censored.com/favicon.ico"), collector)
        script_js = measurement_snippet_js(
            MeasurementTask.new(TaskType.SCRIPT, "http://censored.com/app.js"), collector)
        assert "<img>" in image_js
        assert "iframe" in iframe_js.lower()
        assert "<script>" in script_js
