"""Tests for origin-site integration and the end-to-end deployment driver."""

import pytest

from repro.core.origin import OriginSite, client_overhead_report, snippet_overhead_bytes
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.tasks import MeasurementTask, TaskType
from repro.population.world import World, WorldConfig


class TestOriginSite:
    def test_snippet_overhead_near_100_bytes(self, small_world):
        overhead = snippet_overhead_bytes(small_world.coordination_url)
        assert 50 <= overhead <= 150

    def test_origin_site_snippet_and_overhead(self, small_world):
        domain = small_world.origin_domains[0]
        origin = OriginSite(site=small_world.universe.site(domain),
                            coordination_url=small_world.coordination_url)
        assert origin.domain == domain
        assert origin.embed_snippet.startswith("<script")
        assert origin.snippet_bytes == len(origin.embed_snippet.encode())
        fraction = origin.page_overhead_fraction()
        assert 0.0 < fraction < 0.01  # a tiny fraction of the median page weight

    def test_client_overhead_report(self):
        tasks = [
            MeasurementTask.new(TaskType.IMAGE, "http://a.com/favicon.ico",
                                estimated_overhead_bytes=600),
            MeasurementTask.new(TaskType.IMAGE, "http://b.com/favicon.ico",
                                estimated_overhead_bytes=900),
            MeasurementTask.new(TaskType.INLINE_FRAME, "http://a.com/p.html",
                                probe_image_url="http://a.com/i.png",
                                estimated_overhead_bytes=80_000),
        ]
        report = client_overhead_report(tasks)
        assert report.median_bytes(TaskType.IMAGE) == 900
        assert report.summary()["inline_frame"] == 80_000
        assert report.median_bytes(TaskType.SCRIPT) == 0


class TestDeploymentConstruction:
    def test_detection_deployment_has_favicon_tasks_for_all_targets(self, detection_deployment):
        domains = {t.target_domain for t in detection_deployment.target_tasks}
        assert domains == {"facebook.com", "youtube.com", "twitter.com"}
        assert all(t.task_type is TaskType.IMAGE for t in detection_deployment.target_tasks)
        assert all(t.target_url.path == "/favicon.ico" for t in detection_deployment.target_tasks)

    def test_detection_deployment_has_no_testbed(self, detection_deployment):
        assert detection_deployment.testbed is None
        assert detection_deployment.testbed_tasks == []
        assert [p.name for p in detection_deployment.scheduler.pools] == ["targets"]

    def test_soundness_deployment_has_testbed_pool(self, soundness_deployment):
        assert soundness_deployment.testbed is not None
        pool_names = {p.name for p in soundness_deployment.scheduler.pools}
        assert pool_names == {"targets", "testbed"}
        types = {t.task_type for t in soundness_deployment.testbed_tasks}
        assert types == set(TaskType)

    def test_origin_sites_wrap_world_origins(self, detection_deployment):
        assert len(detection_deployment.origins) == len(detection_deployment.world.origin_domains)
        stripping = sum(1 for o in detection_deployment.origins if o.strips_referer)
        assert 0 < stripping < len(detection_deployment.origins)


class TestCampaign:
    def test_campaign_produces_measurements(self, detection_result):
        assert len(detection_result.measurements) > 1000
        assert detection_result.visits_simulated == 4000
        assert detection_result.task_executions >= len(detection_result.measurements)

    def test_measurements_span_many_countries(self, detection_result):
        assert detection_result.collection.distinct_countries() > 30

    def test_referer_stripping_fraction(self, detection_result):
        stripped = sum(1 for m in detection_result.measurements if m.origin_domain is None)
        assert 0.4 < stripped / len(detection_result.measurements) < 0.95

    def test_detection_recovers_ground_truth(self, detection_result):
        report = detection_result.detect()
        detected = report.detected_pairs()
        expected = {
            ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
            ("twitter.com", "CN"), ("twitter.com", "IR"),
            ("facebook.com", "CN"), ("facebook.com", "IR"),
        }
        assert expected <= detected

    def test_no_false_detections_in_uncensored_countries(self, detection_result):
        detected = detection_result.detect().detected_pairs()
        for domain, country in detected:
            assert detection_result.config
            assert country in {"CN", "IR", "PK"}, (domain, country)

    def test_testbed_and_target_split(self, soundness_result):
        testbed = soundness_result.testbed_measurements()
        targets = soundness_result.target_measurements()
        assert testbed and targets
        fraction = len(testbed) / (len(testbed) + len(targets))
        assert 0.15 < fraction < 0.45

    def test_simulate_visit_returns_submission_count(self, small_world):
        config = CampaignConfig(visits=1, include_testbed=False, seed=3)
        deployment = EncoreDeployment(small_world, config)
        submissions = deployment.simulate_visit(country_code="US")
        assert submissions >= 0

    def test_run_campaign_visits_override(self):
        world = World(WorldConfig(seed=77, target_list_total=12, target_list_online=10,
                                  origin_site_count=2))
        deployment = EncoreDeployment(world, CampaignConfig(visits=50, include_testbed=False, seed=5))
        result = deployment.run_campaign(visits=20)
        assert result.visits_simulated == 20
