"""Tests for the §8 robustness extensions and the adaptive detector."""

from collections import Counter

import numpy as np
import pytest

from repro.core.collection import CollectionServer
from repro.core.inference import AdaptiveFilteringDetector, BinomialFilteringDetector
from repro.core.robustness import (
    AdaptiveReputationFilter,
    AdversarySweep,
    PoisoningAttacker,
    PoisoningCampaign,
    ReputationFilter,
)
from repro.core.store import MeasurementStore
from repro.core.tasks import TaskOutcome
from repro.population.geoip import GeoIPDatabase


class TestPoisoningAttacker:
    def test_forged_measurements_match_campaign(self):
        attacker = PoisoningAttacker(rng=0)
        campaign = PoisoningCampaign("facebook.com", "DE", fabricate_blocking=True,
                                     submissions=50, client_identities=5)
        forged = attacker.forge_measurements(campaign)
        assert len(forged) == 50
        assert all(m.target_domain == "facebook.com" for m in forged)
        assert all(m.country_code == "DE" for m in forged)
        assert all(m.failed for m in forged)
        assert len({m.client_ip for m in forged}) == 5

    def test_masking_campaign_reports_success(self):
        attacker = PoisoningAttacker(rng=0)
        forged = attacker.forge_measurements(
            PoisoningCampaign("youtube.com", "PK", fabricate_blocking=False, submissions=20)
        )
        assert all(m.succeeded for m in forged)

    def test_inject_appends_to_collection(self):
        geoip = GeoIPDatabase()
        collection = CollectionServer("http://collector.encore-measurement.org/submit", geoip)
        attacker = PoisoningAttacker(geoip=geoip, rng=1)
        injected = attacker.inject(collection, PoisoningCampaign("twitter.com", "FR", submissions=30))
        assert injected == 30
        assert len(collection) == 30

    def test_poisoning_fools_the_naive_detector(self, detection_result):
        """Without defences, a modest flood invents censorship in Germany."""
        attacker = PoisoningAttacker(rng=2)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=400, client_identities=8)
        )
        poisoned = list(detection_result.measurements) + forged
        report = BinomialFilteringDetector(min_measurements=10).detect_from_measurements(poisoned)
        assert report.detected("facebook.com", "DE")


class TestForgeColumnsEquivalence:
    """``forge_columns`` must be row-for-row identical to ``forge_measurements``."""

    @pytest.mark.parametrize("submissions,identities", [
        (0, 1), (1, 1), (40, 1), (50, 5), (257, 16), (400, 8),
    ])
    @pytest.mark.parametrize("fabricate", [True, False])
    def test_forge_columns_matches_forge_measurements(self, submissions, identities, fabricate):
        campaign = PoisoningCampaign(
            "facebook.com", "DE", fabricate_blocking=fabricate,
            submissions=submissions, client_identities=identities,
        )
        rows = PoisoningAttacker(rng=31).forge_measurements(campaign)
        store = MeasurementStore()
        assert PoisoningAttacker(rng=31).forge_columns(campaign).append_to(store) == submissions
        assert store.rows() == rows

    def test_successive_campaigns_share_attacker_state(self):
        """Id and identity counters advance identically on both paths."""
        first = PoisoningCampaign("facebook.com", "DE", submissions=30, client_identities=4)
        second = PoisoningCampaign("youtube.com", "PK", fabricate_blocking=False,
                                   submissions=20, client_identities=3)
        row_attacker = PoisoningAttacker(rng=32)
        rows = row_attacker.forge_measurements(first) + row_attacker.forge_measurements(second)
        column_attacker = PoisoningAttacker(rng=32)
        store = MeasurementStore()
        column_attacker.forge_columns(first).append_to(store)
        column_attacker.forge_columns(second).append_to(store)
        assert store.rows() == rows
        assert len({m.measurement_id for m in rows}) == 50

    def test_forge_columns_ingests_into_spilled_store(self, tmp_path):
        campaign = PoisoningCampaign("facebook.com", "DE", submissions=300, client_identities=6)
        rows = PoisoningAttacker(rng=33).forge_measurements(campaign)
        store = MeasurementStore(segment_rows=64, max_rows_in_memory=64, spill_dir=tmp_path)
        PoisoningAttacker(rng=33).forge_columns(campaign).append_to(store)
        store.spill()
        assert store.segment_files and store.rows_in_memory == 0
        assert store.rows() == rows

    def test_inject_rides_the_columnar_path(self):
        geoip = GeoIPDatabase()
        collection = CollectionServer(
            "http://collector.encore-measurement.org/submit", geoip
        )
        attacker = PoisoningAttacker(geoip=geoip, rng=34)
        reference = PoisoningAttacker(rng=34).forge_measurements(
            PoisoningCampaign("twitter.com", "FR", submissions=30, client_identities=3)
        )
        injected = attacker.inject(
            collection, PoisoningCampaign("twitter.com", "FR", submissions=30, client_identities=3)
        )
        assert injected == 30
        assert collection.measurements == reference


class TestReputationFilter:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReputationFilter(max_submissions_per_client=0)
        with pytest.raises(ValueError):
            ReputationFilter(suspicious_share=0.0)

    def test_honest_measurements_pass_through(self, detection_result):
        honest = detection_result.measurements
        report = ReputationFilter().apply(honest)
        assert len(report.kept) >= 0.95 * len(honest)

    def test_filter_defeats_fabricated_blocking(self, detection_result):
        attacker = PoisoningAttacker(rng=3)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=400, client_identities=8)
        )
        poisoned = list(detection_result.measurements) + forged
        cleaned = ReputationFilter().filtered_measurements(poisoned)
        report = BinomialFilteringDetector(min_measurements=10).detect_from_measurements(cleaned)
        assert not report.detected("facebook.com", "DE")

    def test_filter_preserves_real_detections(self, detection_result):
        attacker = PoisoningAttacker(rng=4)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=400, client_identities=8)
        )
        poisoned = list(detection_result.measurements) + forged
        cleaned = ReputationFilter().filtered_measurements(poisoned)
        report = BinomialFilteringDetector(min_measurements=10).detect_from_measurements(cleaned)
        for pair in [("youtube.com", "PK"), ("facebook.com", "CN"), ("twitter.com", "IR")]:
            assert pair in report.detected_pairs()

    def test_rate_limiting_counts_drops(self):
        attacker = PoisoningAttacker(rng=5)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=200, client_identities=2)
        )
        report = ReputationFilter(max_submissions_per_client=10).apply(forged)
        assert report.dropped_rate_limited == 200 - 2 * 10
        assert report.dropped == report.dropped_rate_limited + report.dropped_low_reputation


class TestReputationFilterColumnarEquivalence:
    """The vectorized group-by verdict must match the per-row reference walk."""

    def poisoned_corpus(self, detection_result, rng_seed=6):
        attacker = PoisoningAttacker(rng=rng_seed)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=400, client_identities=8)
        )
        forged += attacker.forge_measurements(
            PoisoningCampaign("youtube.com", "PK", fabricate_blocking=False,
                              submissions=150, client_identities=3)
        )
        return list(detection_result.measurements) + forged

    @pytest.mark.parametrize("max_per_client,share", [(10, 0.2), (3, 0.1), (50, 0.5)])
    def test_apply_matches_reference_row_for_row(self, detection_result, max_per_client, share):
        corpus = self.poisoned_corpus(detection_result)
        filt = ReputationFilter(max_submissions_per_client=max_per_client,
                                suspicious_share=share)
        reference = filt.apply_reference(corpus)
        columnar = filt.apply(corpus)
        assert columnar.kept == reference.kept
        assert columnar.dropped_rate_limited == reference.dropped_rate_limited
        assert columnar.dropped_low_reputation == reference.dropped_low_reputation

    def test_apply_store_matches_reference(self, detection_result):
        corpus = self.poisoned_corpus(detection_result, rng_seed=7)
        collection = CollectionServer("http://collector.encore-measurement.org/submit")
        collection.ingest_measurements(corpus)
        filt = ReputationFilter()
        reference = filt.apply_reference(collection.measurements)
        store_report = filt.apply_store(collection)
        assert store_report.dropped_rate_limited == reference.dropped_rate_limited
        assert store_report.dropped_low_reputation == reference.dropped_low_reputation
        assert len(store_report.kept_indices) == len(reference.kept)
        kept = store_report.kept_measurements()
        assert [(m.client_ip, m.target_domain, m.outcome) for m in kept] == [
            (m.client_ip, m.target_domain, m.outcome) for m in reference.kept
        ]

    def test_empty_corpus(self):
        filt = ReputationFilter()
        assert filt.apply([]).kept == []
        assert filt.apply([]).dropped == 0

    def test_apply_store_on_poisoned_spilled_store(self, detection_result, tmp_path):
        """Filtering and re-detection run on a spilled poisoned store without rows."""
        honest = detection_result.measurements
        campaign = PoisoningCampaign("facebook.com", "DE", submissions=400, client_identities=8)
        reference_corpus = list(honest) + PoisoningAttacker(rng=8).forge_measurements(campaign)
        store = MeasurementStore(max_rows_in_memory=512, spill_dir=tmp_path)
        store.append_rows(honest)
        PoisoningAttacker(rng=8).forge_columns(campaign).append_to(store)
        store.spill()
        assert store.segment_files and store.rows_in_memory == 0

        filt = ReputationFilter()
        reference = filt.apply_reference(reference_corpus)
        verdict = filt.apply_store(store)
        assert verdict.dropped_rate_limited == reference.dropped_rate_limited
        assert verdict.dropped_low_reputation == reference.dropped_low_reputation
        assert len(verdict.kept_indices) == len(reference.kept)
        # Defended detection over the kept rows, straight from the mask.
        detector = BinomialFilteringDetector(min_measurements=10)
        assert detector.detect_from_counts(verdict.success_counts()).detected_pairs() == \
            detector.detect_from_measurements(reference.kept).detected_pairs()


class TestAdversarySweep:
    """The store-path sweep must reproduce the row pipeline cell for cell."""

    BUDGETS = [(100, 4), (400, 8)]
    SEED = 5

    def row_pipeline_cell(self, honest, submissions, identities, entropy):
        attacker = PoisoningAttacker(rng=np.random.default_rng(entropy))
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=submissions,
                              client_identities=identities)
        )
        poisoned = list(honest) + forged
        detector = BinomialFilteringDetector()
        reference = ReputationFilter().apply_reference(poisoned)
        return {
            "naive": frozenset(detector.detect_from_measurements(poisoned).detected_pairs()),
            "defended": frozenset(
                detector.detect_from_measurements(reference.kept).detected_pairs()
            ),
            "dropped_rate_limited": reference.dropped_rate_limited,
            "dropped_low_reputation": reference.dropped_low_reputation,
        }

    def test_sweep_matches_row_pipeline(self, detection_result):
        cells = detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="inline", seed=self.SEED
        )
        honest = detection_result.measurements
        for index, ((submissions, identities), cell) in enumerate(zip(self.BUDGETS, cells)):
            expected = self.row_pipeline_cell(honest, submissions, identities,
                                              [self.SEED, index])
            assert cell.submissions == submissions
            assert cell.identities == identities
            assert cell.forged == submissions
            assert cell.poisoned_rows == len(honest) + submissions
            assert cell.naive_pairs == expected["naive"]
            assert cell.defended_pairs == expected["defended"]
            assert cell.dropped_rate_limited == expected["dropped_rate_limited"]
            assert cell.dropped_low_reputation == expected["dropped_low_reputation"]
            assert cell.target_pair == ("facebook.com", "DE")

    def test_process_executor_matches_inline(self, detection_result, tmp_path):
        inline = detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="inline", seed=6
        )
        fanned = detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="process", seed=6,
            spill_dir=str(tmp_path / "sweep"),
        )
        assert fanned == inline

    def test_sweep_resumes_from_committed_manifests(self, detection_result, tmp_path):
        root = tmp_path / "sweep"
        first = detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="inline", seed=7,
            spill_dir=str(root),
        )
        manifests = sorted(root.glob("cell-*/manifest.json"))
        assert len(manifests) == len(self.BUDGETS)
        stamps = [path.stat().st_mtime_ns for path in manifests]
        second = detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="inline", seed=7,
            spill_dir=str(root),
        )
        assert second == first
        assert [path.stat().st_mtime_ns for path in manifests] == stamps
        # A different seed is a different signature: cells re-forge.
        detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="inline", seed=8,
            spill_dir=str(root),
        )
        assert [path.stat().st_mtime_ns for path in manifests] != stamps

    def test_sweep_on_a_spilled_honest_store(self, detection_result, tmp_path):
        """Adopting a spilled honest corpus gives identical verdicts."""
        spilled = MeasurementStore(max_rows_in_memory=512, spill_dir=tmp_path / "honest")
        spilled.append_rows(detection_result.measurements)
        spilled.spill()
        sweep = AdversarySweep(executor="inline", seed=self.SEED)
        from_spilled = sweep.run(spilled, "facebook.com", "DE", self.BUDGETS)
        from_resident = detection_result.adversary_sweep(
            "facebook.com", "DE", self.BUDGETS, executor="inline", seed=self.SEED
        )
        assert from_spilled == from_resident

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            AdversarySweep(executor="threads")


class TestMaskingSweep:
    """``fabricate_blocking=False`` grids over a *real* detection (§8 masking)."""

    #: A pair the honest detection campaign genuinely flags.
    TARGET = ("youtube.com", "PK")
    BUDGETS = [(50, 2), (600, 24)]
    SEED = 9

    def row_pipeline_cell(self, honest, submissions, identities, entropy):
        attacker = PoisoningAttacker(rng=np.random.default_rng(entropy))
        forged = attacker.forge_measurements(
            PoisoningCampaign(*self.TARGET, fabricate_blocking=False,
                              submissions=submissions, client_identities=identities)
        )
        poisoned = list(honest) + forged
        detector = BinomialFilteringDetector()
        reference = ReputationFilter().apply_reference(poisoned)
        return {
            "naive": frozenset(detector.detect_from_measurements(poisoned).detected_pairs()),
            "defended": frozenset(
                detector.detect_from_measurements(reference.kept).detected_pairs()
            ),
            "dropped_rate_limited": reference.dropped_rate_limited,
            "dropped_low_reputation": reference.dropped_low_reputation,
        }

    def test_masking_sweep_matches_row_pipeline(self, detection_result):
        assert self.TARGET in detection_result.detect().detected_pairs()
        cells = detection_result.adversary_sweep(
            *self.TARGET, self.BUDGETS, fabricate_blocking=False,
            executor="inline", seed=self.SEED,
        )
        honest = detection_result.measurements
        for index, ((submissions, identities), cell) in enumerate(zip(self.BUDGETS, cells)):
            expected = self.row_pipeline_cell(
                honest, submissions, identities, [self.SEED, index]
            )
            assert cell.fabricate_blocking is False
            assert cell.naive_pairs == expected["naive"]
            assert cell.defended_pairs == expected["defended"]
            assert cell.dropped_rate_limited == expected["dropped_rate_limited"]
            assert cell.dropped_low_reputation == expected["dropped_low_reputation"]
            assert cell.naive_masked == (self.TARGET not in expected["naive"])
            assert cell.defended_masked == (self.TARGET not in expected["defended"])
            assert cell.attack_succeeded_naive == cell.naive_masked
            assert cell.attack_succeeded_defended == cell.defended_masked

    def test_masking_budget_hides_then_filter_restores(self, detection_result):
        """A narrow success flood hides the real detection; reputation restores
        it — but a budget spread across enough Sybil identities slips under
        the dominance test and stays hidden, the §8 trade-off."""
        narrow, wide = detection_result.adversary_sweep(
            *self.TARGET, [(200, 8), (600, 24)], fabricate_blocking=False,
            executor="inline", seed=self.SEED,
        )
        assert narrow.naive_masked, "the flood should hide the real detection"
        assert not narrow.defended_masked, "filtering should restore the detection"
        assert narrow.detections_survive([self.TARGET])
        assert wide.naive_masked and wide.defended_masked


class TestAdaptiveReputationFilter:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveReputationFilter(min_threshold=0.9, max_threshold=0.5)
        with pytest.raises(ValueError):
            AdaptiveReputationFilter(margin=0.0)
        with pytest.raises(ValueError):
            ReputationFilter(disagreement_threshold=0.0)

    def test_country_thresholds_track_background_failure(self, detection_result):
        """Flakier countries get roomier disagreement thresholds."""
        corpus = detection_result.measurements
        filt = AdaptiveReputationFilter(margin=0.45, min_threshold=0.5, max_threshold=0.85)
        thresholds = filt.country_thresholds(corpus)
        fails = Counter(m.country_code for m in corpus if m.failed)
        rows = Counter(m.country_code for m in corpus)
        rates = {code: fails.get(code, 0) / rows[code] for code in rows}
        flaky = max(rates, key=rates.get)
        pristine = min(rates, key=rates.get)
        assert thresholds[flaky] >= thresholds[pristine]
        assert all(0.5 <= t <= 0.85 for t in thresholds.values())
        # The fixed filter's table is flat.
        fixed = ReputationFilter().country_thresholds(corpus)
        assert set(fixed.values()) == {0.5}

    @pytest.mark.parametrize("rng_seed", [6, 7])
    def test_adaptive_apply_matches_reference_row_for_row(self, detection_result, rng_seed):
        """The per-country threshold flows through both paths identically."""
        corpus = TestReputationFilterColumnarEquivalence().poisoned_corpus(
            detection_result, rng_seed=rng_seed
        )
        filt = AdaptiveReputationFilter()
        reference = filt.apply_reference(corpus)
        columnar = filt.apply(corpus)
        assert columnar.kept == reference.kept
        assert columnar.dropped_rate_limited == reference.dropped_rate_limited
        assert columnar.dropped_low_reputation == reference.dropped_low_reputation

    def test_adaptive_apply_store_matches_reference(self, detection_result):
        corpus = TestReputationFilterColumnarEquivalence().poisoned_corpus(
            detection_result, rng_seed=8
        )
        collection = CollectionServer("http://collector.encore-measurement.org/submit")
        collection.ingest_measurements(corpus)
        filt = AdaptiveReputationFilter()
        reference = filt.apply_reference(collection.measurements)
        verdict = filt.apply_store(collection)
        assert verdict.dropped_rate_limited == reference.dropped_rate_limited
        assert verdict.dropped_low_reputation == reference.dropped_low_reputation
        assert len(verdict.kept_indices) == len(reference.kept)

    def test_adaptive_filter_still_defeats_fabrication(self, detection_result):
        attacker = PoisoningAttacker(rng=11)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", submissions=400, client_identities=8)
        )
        poisoned = list(detection_result.measurements) + forged
        cleaned = AdaptiveReputationFilter().filtered_measurements(poisoned)
        report = BinomialFilteringDetector(min_measurements=10).detect_from_measurements(cleaned)
        assert not report.detected("facebook.com", "DE")


class TestAdaptiveFilteringDetector:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFilteringDetector(min_prior=0.9, max_prior=0.5)
        with pytest.raises(ValueError):
            AdaptiveFilteringDetector(discount=0.0)

    def test_country_priors_track_baseline_quality(self):
        detector = AdaptiveFilteringDetector(min_measurements=10)
        counts = {
            ("control.org", "DE"): (100, 98),   # pristine network
            ("control.org", "IN"): (100, 75),   # flaky network
            ("target.org", "DE"): (100, 97),
            ("target.org", "IN"): (100, 70),
        }
        priors = detector.country_priors(counts)
        assert priors["DE"] > priors["IN"]
        assert detector.min_prior <= priors["IN"] <= detector.max_prior

    def test_adaptive_prior_reduces_flaky_network_false_positives(self):
        # India's baseline is 62% because of unreliable connectivity; a fixed
        # 0.7 prior flags the target, the adaptive one does not.
        counts = {
            ("control.org", "IN"): (200, 124),
            ("target.org", "IN"): (200, 118),
            ("control.org", "US"): (200, 196),
            ("target.org", "US"): (200, 195),
        }
        fixed = BinomialFilteringDetector(min_measurements=10).detect_from_counts(counts)
        adaptive = AdaptiveFilteringDetector(min_measurements=10).detect_from_counts(counts)
        assert fixed.detected("target.org", "IN")
        assert not adaptive.detected("target.org", "IN")

    def test_adaptive_detector_still_finds_real_filtering(self, detection_result):
        report = AdaptiveFilteringDetector(min_measurements=10).detect(detection_result.collection)
        expected = {
            ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
            ("twitter.com", "CN"), ("twitter.com", "IR"),
            ("facebook.com", "CN"), ("facebook.com", "IR"),
        }
        assert expected <= report.detected_pairs()
        assert all(country in {"CN", "IR", "PK"} for _, country in report.detected_pairs())
