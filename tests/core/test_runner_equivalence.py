"""Serial vs. batch campaign equivalence (the runner's core guarantee).

``mode="serial"`` and ``mode="batch"`` share one plan (sampling, scheduling,
pre-drawn randomness) but execute it with completely different code — a
scalar per-visit walk over interceptor objects versus vectorized numpy
passes over cached verdicts.  For a fixed seed the two must produce
*identical* campaigns; these tests pin that, plus the scheduler- and
resume-level equivalences it is built from.
"""

import numpy as np
import pytest

from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.runner import BatchProgress, CampaignRunner, CampaignSweep
from repro.core.scheduler import Scheduler, TaskPool
from repro.core.tasks import MeasurementTask, TaskType
from repro.population.world import World, WorldConfig


def small_deployment(mode, include_testbed=False, seed=11, visits=900, country=None,
                     plan_block_visits=2048):
    world = World(
        WorldConfig(seed=7, target_list_total=30, target_list_online=24, origin_site_count=4)
    )
    config = CampaignConfig(
        visits=visits,
        include_testbed=include_testbed,
        testbed_fraction=0.3,
        seed=seed,
        mode=mode,
        country_code=country,
        plan_block_visits=plan_block_visits,
    )
    return EncoreDeployment(world, config)


def measurement_key(result):
    """Everything that identifies a measurement, minus the uuid4 task ids
    (which legitimately differ between two independently built deployments)."""
    return [
        (
            str(m.target_url), m.task_type.value, m.country_code,
            m.outcome.value, m.elapsed_ms, m.probe_time_ms, m.origin_domain,
            m.day, m.client_ip, m.isp, m.browser_family, m.is_automated,
        )
        for m in result.measurements
    ]


class TestSerialBatchEquivalence:
    @pytest.mark.parametrize("include_testbed", [False, True])
    def test_identical_measurements_and_counts(self, include_testbed):
        serial_dep = small_deployment("serial", include_testbed)
        batch_dep = small_deployment("batch", include_testbed)
        serial = serial_dep.run_campaign()
        batch = batch_dep.run_campaign()

        assert serial.mode == "serial" and batch.mode == "batch"
        assert len(serial.measurements) == len(batch.measurements)
        assert serial.task_executions == batch.task_executions
        assert measurement_key(serial) == measurement_key(batch)
        assert (
            serial.collection.unreachable_submissions
            == batch.collection.unreachable_submissions
        )
        assert (
            serial_dep.coordination.delivery_failure_rate
            == batch_dep.coordination.delivery_failure_rate
        )

    @pytest.mark.parametrize("include_testbed", [False, True])
    def test_identical_detection_verdicts(self, include_testbed):
        serial = small_deployment("serial", include_testbed, seed=23).run_campaign()
        batch = small_deployment("batch", include_testbed, seed=23).run_campaign()
        assert serial.detect().detected_pairs() == batch.detect().detected_pairs()
        assert serial.collection.success_counts() == batch.collection.success_counts()

    def test_equivalence_with_pinned_country(self):
        serial = small_deployment("serial", country="CN", visits=400).run_campaign()
        batch = small_deployment("batch", country="CN", visits=400).run_campaign()
        assert measurement_key(serial) == measurement_key(batch)
        assert all(m.country_code == "CN" for m in batch.measurements)

    def test_batch_size_does_not_change_results(self):
        coarse = small_deployment("batch").run_campaign(batch_size=1000)
        fine = small_deployment("batch").run_campaign(batch_size=137)
        assert measurement_key(coarse) == measurement_key(fine)


class TestShardedBatchEquivalence:
    """mode="sharded" is the batch path fanned out over workers: for a fixed
    seed the merged campaign must be identical to mode="batch" — the shard
    subsystem's core guarantee (tests/core/test_shard.py pins it in depth)."""

    @pytest.mark.parametrize("include_testbed", [False, True])
    def test_sharded_matches_batch(self, include_testbed):
        batch = small_deployment(
            "batch", include_testbed, visits=600, plan_block_visits=100
        ).run_campaign()
        sharded = small_deployment(
            "sharded", include_testbed, visits=600, plan_block_visits=100
        ).run_campaign(num_shards=3, shard_executor="inline")
        assert sharded.mode == "sharded"
        assert measurement_key(sharded) == measurement_key(batch)
        assert sharded.detect().detected_pairs() == batch.detect().detected_pairs()

    def test_sharding_is_batch_size_invariant(self):
        # Shards partition planning blocks, batches slice them: neither may
        # change the campaign.
        fine = small_deployment(
            "batch", visits=600, plan_block_visits=100
        ).run_campaign(batch_size=97)
        sharded = small_deployment(
            "sharded", visits=600, plan_block_visits=100
        ).run_campaign(num_shards=2, shard_executor="inline")
        assert measurement_key(sharded) == measurement_key(fine)


class TestSchedulerBatchEquivalence:
    def make_pools(self):
        targets = [
            MeasurementTask.new(TaskType.IMAGE, f"http://site-{i}.org/favicon.ico")
            for i in range(5)
        ]
        testbed = [
            MeasurementTask.new(TaskType.IMAGE, "http://t.net/favicon.ico"),
            MeasurementTask.new(TaskType.STYLE_SHEET, "http://t.net/a.css"),
            MeasurementTask.new(TaskType.SCRIPT, "http://t.net/a.js"),
            MeasurementTask.new(
                TaskType.INLINE_FRAME, "http://t.net/index.html",
                probe_image_url="http://t.net/favicon.ico",
            ),
        ]
        return [
            TaskPool("targets", targets, weight=0.7),
            TaskPool("testbed", testbed, weight=0.3),
        ]

    def test_assign_batch_matches_sequential_schedule(self):
        world = World(WorldConfig(seed=3, target_list_total=12, target_list_online=10))
        batch = world.sample_client_batch(600)
        clients = batch.clients()
        pools = self.make_pools()
        reference = Scheduler(pools, rng=np.random.default_rng(5))
        batched = Scheduler(pools, rng=np.random.default_rng(5))

        expected = [reference.schedule(c) for c in clients]
        actual = batched.assign_batch(clients)

        assert [
            ([t.measurement_id for t in d.tasks], d.pool_name) for d in expected
        ] == [
            ([t.measurement_id for t in d.tasks], d.pool_name) for d in actual
        ]
        assert reference.assignment_counts == batched.assignment_counts
        # Both consumed the exact same RNG stream.
        assert reference._rng.random() == batched._rng.random()

    def test_assign_batch_accepts_client_batch_columns(self):
        world = World(WorldConfig(seed=3, target_list_total=12, target_list_online=10))
        batch = world.sample_client_batch(600)
        pools = self.make_pools()
        from_objects = Scheduler(pools, rng=np.random.default_rng(9))
        from_columns = Scheduler(pools, rng=np.random.default_rng(9))

        expected = from_objects.assign_batch(batch.clients())
        actual = from_columns.assign_batch(batch)

        assert [
            ([t.measurement_id for t in d.tasks], d.pool_name) for d in expected
        ] == [
            ([t.measurement_id for t in d.tasks], d.pool_name) for d in actual
        ]
        assert from_objects.assignment_counts == from_columns.assignment_counts


class TestClientBatchEquivalence:
    def test_materialized_clients_match_columns(self):
        world = World(WorldConfig(seed=19, target_list_total=12, target_list_online=10))
        batch = world.sample_client_batch(200)
        for index in (0, 7, 131, 199):
            client = batch.client(index)
            assert client.country_code == batch.country_codes[index]
            assert client.ip_address == batch.ip_addresses[index]
            assert client.isp == batch.isp(index)
            assert client.browser is batch.browser(index)
            assert client.dwell_time_s == batch.dwell_times_s[index]
            assert client.is_automated == bool(batch.automated[index])
            assert client.link.rtt_ms == batch.rtt_ms[index]
            assert client.link.loss_rate == batch.loss_rate[index]

    def test_pinned_country_batch(self):
        world = World(WorldConfig(seed=19, target_list_total=12, target_list_online=10))
        batch = world.sample_client_batch(50, country_code="IR")
        assert set(batch.country_codes) == {"IR"}
        assert all(world.geoip.lookup(ip) == "IR" for ip in batch.ip_addresses)


class TestCheckpointResume:
    def test_progress_hook_sees_every_batch(self):
        seen = []
        deployment = small_deployment("batch", visits=500)
        deployment.run_campaign(batch_size=100, progress=seen.append)
        assert len(seen) == 5
        assert all(isinstance(p, BatchProgress) for p in seen)
        assert [p.batch_index for p in seen] == list(range(5))
        assert seen[-1].visits_completed == 500
        assert seen[-1].measurements_total == len(deployment.collection)

    def test_resume_reproduces_remaining_batches(self):
        full = small_deployment("batch", visits=600)
        full_result = full.run_campaign(batch_size=200)
        full_keys = measurement_key(full_result)

        # Count how many measurements the first two batches contributed.
        per_batch = []
        counting = small_deployment("batch", visits=600)
        counting.run_campaign(
            batch_size=200, progress=lambda p: per_batch.append(p.measurements_added)
        )
        done_before_resume = sum(per_batch[:2])

        resumed = small_deployment("batch", visits=600)
        resumed_result = resumed.run_campaign(batch_size=200, resume_from_batch=2)
        assert measurement_key(resumed_result) == full_keys[done_before_resume:]

    def test_runner_instance_is_reusable_across_campaigns(self):
        # Regression: the block-plan cache is keyed on the campaign epoch,
        # so a runner driven twice must not serve the first campaign's
        # stale block plans to the second.
        deployment = small_deployment("batch", visits=300)
        runner = CampaignRunner(deployment, mode="batch")
        first = runner.run(300)
        after_first = len(deployment.collection)
        second = runner.run(300)
        assert first.visits_simulated == second.visits_simulated == 300
        assert len(deployment.collection) > after_first

    def test_resume_keeps_replication_report_complete(self):
        # Skipped batches' planning is replayed (execution is not), so the
        # campaign-wide replication report matches an uninterrupted run
        # regardless of where the resume boundary falls inside a block.
        full = small_deployment("batch", visits=600, plan_block_visits=100)
        full.run_campaign(batch_size=200)
        resumed = small_deployment("batch", visits=600, plan_block_visits=100)
        resumed.run_campaign(batch_size=200, resume_from_batch=2)
        assert sorted(full.scheduler.replication_report().values()) == sorted(
            resumed.scheduler.replication_report().values()
        )

    def test_resume_is_mode_agnostic(self):
        serial = small_deployment("serial", visits=400)
        serial_tail = serial.run_campaign(batch_size=200, resume_from_batch=1)
        batch = small_deployment("batch", visits=400)
        batch_tail = batch.run_campaign(batch_size=200, resume_from_batch=1)
        assert measurement_key(serial_tail) == measurement_key(batch_tail)

    def test_invalid_runner_arguments_rejected(self):
        deployment = small_deployment("batch", visits=100)
        with pytest.raises(ValueError):
            CampaignRunner(deployment, mode="warp")
        with pytest.raises(ValueError):
            CampaignRunner(deployment, batch_size=0)
        with pytest.raises(ValueError):
            deployment.run_campaign(batch_size=0)

    def test_resume_on_stale_state_is_rejected(self):
        # Replay only matches the interrupted run from a fresh World +
        # deployment; resuming on advanced RNG streams must fail loudly
        # instead of silently appending a different campaign.
        deployment = small_deployment("batch", visits=400)
        deployment.run_campaign(batch_size=200)
        with pytest.raises(ValueError, match="freshly built"):
            deployment.run_campaign(batch_size=200, resume_from_batch=1)

    def test_resume_after_legacy_campaign_is_rejected(self):
        # A legacy campaign advances shared state (GeoIP counters, scheduler
        # RNG) without touching the batch-sampling streams; the staleness
        # guard must still see it.
        deployment = small_deployment("batch", visits=200)
        deployment.run_campaign(visits=50, mode="legacy")
        with pytest.raises(ValueError, match="freshly built"):
            deployment.run_campaign(batch_size=100, resume_from_batch=1)

    def test_legacy_mode_rejects_runner_only_arguments(self):
        deployment = small_deployment("legacy", visits=50)
        with pytest.raises(ValueError, match="legacy"):
            deployment.run_campaign(progress=lambda p: None)
        with pytest.raises(ValueError, match="legacy"):
            deployment.run_campaign(resume_from_batch=1)


class TestCampaignSweep:
    def test_sweep_reuses_world_and_restores_interceptors(self):
        world = World(
            WorldConfig(seed=31, target_list_total=12, target_list_online=10, origin_site_count=3)
        )
        base = CampaignConfig(visits=300, include_testbed=True, favicons_only=True)
        sweep = CampaignSweep(world=world, base_config=base)
        before = list(world.global_interceptors)
        records = sweep.run(seeds=(1, 2), testbed_fractions=(0.2, 0.4))
        assert len(records) == 4
        assert world.global_interceptors == before
        assert all(r.visits == 300 for r in records)
        assert all(r.measurements > 0 for r in records)
        fractions = {r.testbed_fraction for r in records}
        assert fractions == {0.2, 0.4}

    def test_sweep_pinned_country_runs(self):
        world = World(
            WorldConfig(seed=37, target_list_total=12, target_list_online=10, origin_site_count=2)
        )
        base = CampaignConfig(visits=200, include_testbed=False)
        records = CampaignSweep(world=world, base_config=base).run(
            seeds=(5,), countries=("US", "CN")
        )
        assert len(records) == 2
        assert {r.country_code for r in records} == {"US", "CN"}
        assert all(r.visits_per_second > 0 for r in records)
