"""Tests for task scheduling and coordination-server delivery."""

import numpy as np
import pytest

from repro.browser.profiles import BrowserFamily, BrowserProfile
from repro.core.coordination import CoordinationServer
from repro.core.scheduler import Scheduler, TaskPool
from repro.core.tasks import MeasurementTask, TaskType
from repro.netsim.latency import LinkQuality
from repro.population.clients import Client
from repro.population.world import World, WorldConfig


def make_client(family=BrowserFamily.CHROME, dwell=30.0, automated=False, country="US", client_id=1):
    return Client(
        client_id=client_id,
        ip_address="10.0.0.1",
        country_code=country,
        isp="isp-1",
        browser=BrowserProfile.for_family(family),
        link=LinkQuality.broadband(),
        dwell_time_s=dwell,
        is_automated=automated,
    )


def image_task(domain="a.com"):
    return MeasurementTask.new(TaskType.IMAGE, f"http://{domain}/favicon.ico")


def script_task(domain="a.com"):
    return MeasurementTask.new(TaskType.SCRIPT, f"http://{domain}/app.js")


class TestScheduler:
    def test_requires_a_pool(self):
        with pytest.raises(ValueError):
            Scheduler([])

    def test_assigns_one_task_to_ordinary_visitor(self):
        scheduler = Scheduler([TaskPool("p", [image_task()])], rng=0)
        decision = scheduler.schedule(make_client())
        assert len(decision.tasks) == 1
        assert decision.pool_name == "p"

    def test_no_tasks_for_crawler_or_bouncer(self):
        scheduler = Scheduler([TaskPool("p", [image_task()])], rng=0)
        assert scheduler.schedule(make_client(automated=True)).tasks == []
        assert scheduler.schedule(make_client(dwell=1.0)).tasks == []

    def test_long_dwell_gets_multiple_tasks(self):
        tasks = [image_task(f"site-{i}.org") for i in range(5)]
        scheduler = Scheduler([TaskPool("p", tasks)], rng=0)
        decision = scheduler.schedule(make_client(dwell=120.0))
        assert 1 < len(decision.tasks) <= Scheduler.MAX_TASKS_PER_VISIT
        assert len({t.measurement_id for t in decision.tasks}) == len(decision.tasks)

    def test_script_tasks_never_go_to_non_chrome(self):
        scheduler = Scheduler([TaskPool("p", [script_task()])], rng=0)
        decision = scheduler.schedule(make_client(family=BrowserFamily.FIREFOX))
        assert decision.tasks == []
        chrome_decision = scheduler.schedule(make_client(family=BrowserFamily.CHROME))
        assert len(chrome_decision.tasks) == 1

    def test_pool_weights_respected(self):
        heavy = TaskPool("heavy", [image_task("heavy.org")], weight=0.9)
        light = TaskPool("light", [image_task("light.org")], weight=0.1)
        scheduler = Scheduler([heavy, light], rng=1)
        choices = [scheduler.schedule(make_client(client_id=i)).pool_name for i in range(500)]
        heavy_share = choices.count("heavy") / len(choices)
        assert 0.8 < heavy_share < 0.97

    def test_replication_is_balanced(self):
        tasks = [image_task(f"site-{i}.org") for i in range(4)]
        scheduler = Scheduler([TaskPool("p", tasks)], rng=2)
        for i in range(400):
            scheduler.schedule(make_client(client_id=i))
        counts = scheduler.replication_report().values()
        assert max(counts) - min(counts) <= 2

    def test_negative_pool_weight_rejected(self):
        with pytest.raises(ValueError):
            TaskPool("p", [], weight=-1)

    def test_tasks_of_type_helper(self):
        scheduler = Scheduler([TaskPool("p", [image_task(), script_task()])], rng=0)
        assert len(scheduler.tasks_of_type(TaskType.SCRIPT)) == 1


class TestBatchedSchedulerRegression:
    """Pin pool-weight proportions and replication balance over 10k draws.

    The batched scheduler takes cached/array shortcuts; these bounds make
    sure it can never silently skew the paper's ~30/70 testbed split or let
    a task's replication drift.
    """

    TESTBED_FRACTION = 0.3

    def make_pools(self):
        targets = [image_task(f"target-{i}.org") for i in range(6)]
        testbed = [image_task(f"testbed-{i}.net") for i in range(4)] + [script_task("testbed-js.net")]
        return [
            TaskPool("targets", targets, weight=1.0 - self.TESTBED_FRACTION),
            TaskPool("testbed", testbed, weight=self.TESTBED_FRACTION),
        ]

    def make_scheduler(self, rng, pools=None):
        return Scheduler(pools if pools is not None else self.make_pools(), rng=rng)

    def test_pool_weight_proportions_over_10k_draws(self):
        from repro.population.world import World, WorldConfig

        world = World(WorldConfig(seed=101, target_list_total=12, target_list_online=10))
        batch = world.clients.sample_batch(10_000)
        scheduler = self.make_scheduler(np.random.default_rng(101))
        decisions = scheduler.assign_batch(batch)
        assigned = [d.pool_name for d in decisions if d.pool_name]
        assert len(assigned) > 4000
        testbed_share = assigned.count("testbed") / len(assigned)
        assert abs(testbed_share - self.TESTBED_FRACTION) < 0.02, testbed_share

    def test_replication_balance_over_10k_draws(self):
        from repro.population.world import World, WorldConfig

        world = World(WorldConfig(seed=103, target_list_total=12, target_list_online=10))
        batch = world.clients.sample_batch(10_000)
        scheduler = self.make_scheduler(np.random.default_rng(103))
        scheduler.assign_batch(batch)
        counts = scheduler.replication_report()
        targets = {t.measurement_id for t in scheduler.pools[0].tasks}
        universal_testbed = {
            t.measurement_id for t in scheduler.pools[1].tasks
            if t.task_type is TaskType.IMAGE
        }
        # Universally runnable tasks stay within a couple of assignments of
        # each other inside their pool.
        for ids in (targets, universal_testbed):
            values = [counts[i] for i in ids]
            assert max(values) - min(values) <= 2, values
        # The Chrome-only script task is picked less often but must not be
        # starved or over-assigned relative to its pool-mates.
        script_id = next(
            t.measurement_id for t in scheduler.pools[1].tasks
            if t.task_type is TaskType.SCRIPT
        )
        assert counts[script_id] > 0
        assert counts[script_id] <= max(counts[i] for i in universal_testbed)

    def test_batched_proportions_match_sequential_schedule(self):
        from repro.population.world import World, WorldConfig

        world = World(WorldConfig(seed=107, target_list_total=12, target_list_online=10))
        batch = world.clients.sample_batch(2_000)
        pools = self.make_pools()
        sequential = self.make_scheduler(np.random.default_rng(107), pools)
        batched = self.make_scheduler(np.random.default_rng(107), pools)
        for client in batch.clients():
            sequential.schedule(client)
        batched.assign_batch(batch)
        assert sequential.replication_report() == batched.replication_report()


class TestCoordinationServer:
    @pytest.fixture(scope="class")
    def world(self):
        return World(WorldConfig(seed=55, target_list_total=12, target_list_online=10,
                                 origin_site_count=2))

    def make_server(self, world, tasks=None, mirrors=None):
        scheduler = Scheduler([TaskPool("p", tasks or [image_task("facebook.com")])], rng=3)
        return CoordinationServer(
            scheduler,
            task_url=world.coordination_url,
            collection_url=world.collection_url,
            mirror_urls=mirrors,
        )

    def test_delivers_tasks_to_reachable_client(self, world):
        server = self.make_server(world)
        client = world.sample_client("US")
        browser = world.make_browser(client)
        decision = server.deliver(client, browser)
        if client.can_run_task:
            assert decision.tasks
        assert server.delivery_log

    def test_blocked_coordination_server_prevents_delivery(self, world):
        from repro.censor.mechanisms import Censor, FilteringMechanism
        from repro.censor.policy import BlacklistPolicy
        from repro.population.world import COORDINATION_DOMAIN

        server = self.make_server(world)
        censor = Censor("anti-encore", BlacklistPolicy.for_domains([COORDINATION_DOMAIN]),
                        FilteringMechanism.DNS_NXDOMAIN)
        client = make_client()
        browser = world.make_browser(client)
        browser.interceptors = (censor,)
        decision = server.deliver(client, browser)
        assert decision.tasks == []
        assert server.delivery_failure_rate > 0.0

    def test_mirror_restores_delivery_when_primary_blocked(self, world):
        from repro.censor.mechanisms import Censor, FilteringMechanism
        from repro.censor.policy import BlacklistPolicy
        from repro.population.world import COORDINATION_DOMAIN

        # Mirror the coordination server on an origin site the censor ignores.
        mirror_domain = world.origin_domains[0]
        mirror_url = f"http://{mirror_domain}/"
        server = self.make_server(world, mirrors=[mirror_url])
        censor = Censor("anti-encore", BlacklistPolicy.for_domains([COORDINATION_DOMAIN]),
                        FilteringMechanism.DNS_NXDOMAIN)
        client = make_client()
        browser = world.make_browser(client)
        browser.interceptors = (censor,)
        decision = server.deliver(client, browser)
        assert decision.tasks
        assert any(r.mirror_used == mirror_url for r in server.delivery_log if r.tasks_delivered)

    def test_render_task_script_concatenates_snippets(self, world):
        server = self.make_server(world, tasks=[image_task("a.com"), image_task("b.com")])
        script = server.render_task_script(server.scheduler.all_tasks)
        assert "a.com" in script and "b.com" in script
