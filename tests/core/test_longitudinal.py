"""Tests for the longitudinal campaign engine and its detection pipeline."""

import numpy as np
import pytest

from repro.censor.policy import PolicyTimeline
from repro.core.inference import (
    CusumChangePointDetector,
    CusumState,
    TimingCusumDetector,
)
from repro.core.longitudinal import LongitudinalConfig, LongitudinalEngine
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.store import DayGroupedCounts
from repro.population.world import World, WorldConfig


def longitudinal_world(seed=7):
    return World(
        WorldConfig(seed=seed, target_list_total=30, target_list_online=24, origin_site_count=4)
    )


def longitudinal_deployment(world=None, seed=11, country_code="DE"):
    """A §7.2-style deployment every visitor of which sits in one country."""
    config = CampaignConfig(
        visits=200,
        include_testbed=False,
        favicons_only=True,
        target_domains=("facebook.com", "youtube.com", "twitter.com"),
        seed=seed,
        country_code=country_code,
    )
    return EncoreDeployment(world or longitudinal_world(), config)


# ----------------------------------------------------------------------
# CUSUM: vectorized ≡ scalar reference
# ----------------------------------------------------------------------
def random_day_counts(rng, cells=40, n_days=50, empty_fraction=0.2):
    """A synthetic ragged (domain, country, day) table with regime shifts."""
    counts = {}
    for cell in range(cells):
        # cells < 77 keeps every (domain % 7, country % 11) pair distinct.
        domain = f"domain-{cell % 7}.org"
        country = f"C{cell % 11:02d}"
        change = rng.integers(0, n_days)
        recovery = rng.integers(change, n_days + 10)
        for day in range(n_days):
            if rng.random() < empty_fraction:
                continue
            n = int(rng.integers(1, 40))
            censored = change <= day < recovery and cell % 3 != 0
            p = 0.08 if censored else 0.92
            s = int(rng.binomial(n, p))
            counts[(domain, country, day)] = (n, s)
    return DayGroupedCounts.from_dict(counts, n_days=n_days)


class TestCusumEquivalence:
    """The vectorized day-column scan must match the per-cell scalar walk."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("threshold,drift,min_daily", [
        (1.0, 0.05, 5), (0.5, 0.0, 1), (2.5, 0.15, 8),
    ])
    def test_events_match_reference_exactly(self, seed, threshold, drift, min_daily):
        rng = np.random.default_rng(seed)
        day_counts = random_day_counts(rng)
        detector = CusumChangePointDetector(
            threshold=threshold, drift=drift, min_daily_measurements=min_daily
        )
        fast = detector.detect_events(day_counts)
        reference = detector.detect_events_reference(day_counts)
        # Dataclass equality covers statistics and confidences bit-for-bit.
        assert fast == reference
        assert fast  # the synthetic shifts are large; silence would be a bug

    def test_empty_counts_detect_nothing(self):
        empty = DayGroupedCounts.from_dict({})
        detector = CusumChangePointDetector()
        assert detector.detect_events(empty) == []
        assert detector.detect_events_reference(empty) == []

    def test_quiet_series_stays_silent(self):
        counts = {("a.org", "DE", day): (50, 47) for day in range(40)}
        detector = CusumChangePointDetector()
        assert detector.detect_events(DayGroupedCounts.from_dict(counts)) == []

    def test_single_shift_reports_onset_and_recovery(self):
        counts = {}
        for day in range(30):
            rate = 0.9 if day < 12 or day >= 22 else 0.05
            counts[("a.org", "DE", day)] = (100, int(100 * rate))
        events = CusumChangePointDetector().detect_events(
            DayGroupedCounts.from_dict(counts)
        )
        kinds = [(e.kind, e.change_day) for e in events]
        assert kinds == [("onset", 12), ("offset", 22)]
        assert all(e.detection_lag <= 2 for e in events)
        assert all(0.5 <= e.confidence <= 1.0 for e in events)

    def test_sparse_days_carry_the_statistic(self):
        """Days below min_daily_measurements neither add nor reset evidence."""
        counts = {}
        for day in range(0, 30, 3):  # two of every three days are empty
            rate = 0.9 if day < 15 else 0.0
            counts[("a.org", "DE", day)] = (20, int(20 * rate))
        detector = CusumChangePointDetector(min_daily_measurements=5)
        events = detector.detect_events(DayGroupedCounts.from_dict(counts))
        assert [e.kind for e in events] == ["onset"]
        assert events == detector.detect_events_reference(
            DayGroupedCounts.from_dict(counts)
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CusumChangePointDetector(healthy_rate=0.2, censored_rate=0.5)
        with pytest.raises(ValueError):
            CusumChangePointDetector(threshold=0.0)
        with pytest.raises(ValueError):
            CusumChangePointDetector(drift=-0.1)
        with pytest.raises(ValueError):
            CusumChangePointDetector(min_daily_measurements=0)


# ----------------------------------------------------------------------
# Resumable CUSUM state: split scans ≡ cold scans, checkpoints round-trip
# ----------------------------------------------------------------------
def truncated_day_counts(full, boundary):
    """The first ``boundary`` days of a DayGroupedCounts, as its own table."""
    kept = {k: v for k, v in full.as_dict().items() if k[2] < boundary}
    return DayGroupedCounts.from_dict(kept, n_days=boundary)


class TestCusumResume:
    @pytest.mark.parametrize("seed,boundaries", [
        (0, [17]),            # one mid-series split
        (1, [5, 23, 37]),     # several uneven increments
        (2, [0, 50]),         # empty first call, then everything
        (3, [10, 10, 30]),    # a no-new-days resume in the middle
    ])
    def test_split_scans_match_cold_scan_exactly(self, seed, boundaries):
        rng = np.random.default_rng(seed)
        full = random_day_counts(rng)
        detector = CusumChangePointDetector()
        cold = detector.detect_events(full)
        assert cold  # the synthetic shifts are large; silence would be a bug
        state = detector.initial_state()
        emitted = []
        for boundary in [*boundaries, full.n_days]:
            emitted.extend(detector.resume(state, truncated_day_counts(full, boundary)))
        assert emitted == cold
        assert state.events == cold
        assert state.days_processed == full.n_days
        # A further resume over the same data is a no-op.
        assert detector.resume(state, full) == []
        assert state.events == cold

    def test_checkpoint_roundtrip_mid_series(self, tmp_path):
        rng = np.random.default_rng(5)
        full = random_day_counts(rng)
        detector = CusumChangePointDetector()
        cold = detector.detect_events(full)
        state = detector.initial_state()
        first = detector.resume(state, truncated_day_counts(full, 25))
        path = tmp_path / "state.json"
        state.save(path, signature="monitor-sig")
        restored = CusumState.load(path, signature="monitor-sig")
        assert restored.days_processed == 25
        assert restored.events == first
        assert restored.cells == state.cells
        second = detector.resume(restored, full)
        assert first + second == cold
        assert restored.events == cold

    def test_checkpoint_signature_mismatch_is_rejected(self, tmp_path):
        state = CusumChangePointDetector().initial_state()
        path = tmp_path / "state.json"
        state.save(path, signature="monitor-sig")
        with pytest.raises(ValueError, match="signature"):
            CusumState.load(path, signature="a-different-monitor")
        # Loading without a signature skips the check.
        assert CusumState.load(path).days_processed == 0

    def test_baselines_survive_the_checkpoint(self, tmp_path):
        detector = CusumChangePointDetector()
        baselines = {"C00": 0.85, "C01": 0.95}
        state = detector.initial_state(baselines)
        rng = np.random.default_rng(9)
        full = random_day_counts(rng)
        events = detector.resume(state, truncated_day_counts(full, 20))
        path = tmp_path / "state.json"
        state.save(path)
        restored = CusumState.load(path)
        assert restored.baselines == baselines
        # The continuation is identical whichever copy carries on.
        assert detector.resume(restored, full) == detector.resume(state, full)
        assert restored.events == state.events == events + restored.events[len(events):]


# ----------------------------------------------------------------------
# The engine: scripted policy → detected events
# ----------------------------------------------------------------------
class TestLongitudinalRun:
    ONSET_DAY = 6
    OFFSET_DAY = 14
    EPOCHS = 20
    #: Generous bound: with ~60 DE measurements per domain per day the CUSUM
    #: statistic crosses within two days of data.
    LAG_BOUND = 3

    def run_deployment(self, mode="batch", seed=11, **config_kwargs):
        deployment = longitudinal_deployment(seed=seed)
        timeline = (
            PolicyTimeline()
            .onset(self.ONSET_DAY, "DE", "facebook.com")
            .offset(self.OFFSET_DAY, "DE", "facebook.com")
        )
        kwargs = {"epochs": self.EPOCHS, "visits_per_epoch": 200, "mode": mode}
        kwargs.update(config_kwargs)
        config = LongitudinalConfig(**kwargs)
        return deployment, deployment.run_longitudinal(timeline, config)

    def test_scripted_onset_detected_within_lag_bound(self):
        deployment, result = self.run_deployment()
        events = result.events()
        onsets = [e for e in events if e.kind == "onset"]
        offsets = [e for e in events if e.kind == "offset"]
        assert [(e.domain, e.country_code) for e in onsets] == [("facebook.com", "DE")]
        assert [(e.domain, e.country_code) for e in offsets] == [("facebook.com", "DE")]
        assert onsets[0].change_day == self.ONSET_DAY
        assert onsets[0].detected_day - self.ONSET_DAY <= self.LAG_BOUND
        assert offsets[0].detected_day - self.OFFSET_DAY <= self.LAG_BOUND
        # The vectorized scan over the *campaign's* data matches the scalar walk.
        assert events == result.detector.detect_events_reference(result.day_counts())

    def test_timeline_report_grades_the_run(self):
        _, result = self.run_deployment()
        report = result.timeline_report()
        assert report.transitions == 2
        assert report.detected_count == 2
        assert report.missed_count == 0
        assert report.detection_rate == 1.0
        assert 0 <= report.mean_detection_lag <= self.LAG_BOUND
        assert report.false_events == []
        assert all(match.change_day_error == 0 for match in report.matches)
        assert "facebook.com" in report.format()

    def test_epoch_summaries_cover_the_timeline(self):
        deployment, result = self.run_deployment()
        assert len(result.epochs) == self.EPOCHS
        assert result.total_days == self.EPOCHS
        assert [epoch.first_day for epoch in result.epochs] == list(range(self.EPOCHS))
        blocked_days = [
            epoch.first_day for epoch in result.epochs
            if ("DE", "facebook.com") in epoch.blocked
        ]
        assert blocked_days == list(range(self.ONSET_DAY, self.OFFSET_DAY))
        assert result.measurements == len(deployment.collection)
        day_column = deployment.collection.store.column("day")
        assert int(day_column.min()) == 0
        assert int(day_column.max()) == self.EPOCHS - 1

    def test_world_and_config_restored_after_run(self):
        deployment, _ = self.run_deployment()
        assert deployment.config.days == 30
        assert deployment.config.day_offset == 0
        assert deployment.world.config.timeline_rules == {}
        assert not deployment.world.censorship_for("DE").filters_anything

    def test_sharded_epochs_match_batch(self):
        """Each epoch fans out over the shard machinery with identical rows."""
        _, batch = self.run_deployment(mode="batch", seed=23)
        _, sharded = self.run_deployment(
            mode="sharded", seed=23, num_shards=2, shard_executor="inline",
        )
        assert len(batch.collection.store) == len(sharded.collection.store)
        assert batch.day_counts().as_dict() == sharded.day_counts().as_dict()
        assert batch.events() == sharded.events()
        sample = np.linspace(
            0, len(batch.collection.store) - 1, num=40, dtype=np.int64
        )

        def keys(rows):
            # Everything but the uuid4 task ids, which legitimately differ
            # between two independently built deployments.
            return [
                (
                    str(m.target_url), m.task_type, m.country_code, m.outcome,
                    m.elapsed_ms, m.probe_time_ms, m.origin_domain, m.day,
                    m.client_ip, m.isp, m.browser_family, m.is_automated,
                )
                for m in rows
            ]

        assert keys(batch.collection.store.rows(sample)) == keys(
            sharded.collection.store.rows(sample)
        )

    def test_serial_epochs_match_batch(self):
        _, batch = self.run_deployment(mode="batch", seed=29)
        _, serial = self.run_deployment(mode="serial", seed=29)
        assert batch.day_counts().as_dict() == serial.day_counts().as_dict()

    def test_throttle_moves_timings_not_success_rates(self):
        """Throttling is the subtle filtering CUSUM is not expected to flag."""
        deployment = longitudinal_deployment(seed=31)
        timeline = PolicyTimeline().throttle(5, "DE", "facebook.com")
        result = deployment.run_longitudinal(
            timeline, LongitudinalConfig(epochs=12, visits_per_epoch=200)
        )
        assert result.events() == []
        assert timeline.transitions() == []
        throttled = [e for e in result.epochs if ("DE", "facebook.com") in e.throttled]
        assert [e.first_day for e in throttled] == list(range(5, 12))

    def test_timing_cusum_catches_throttle_success_cusum_misses(self):
        """The kernel's timing quantiles expose what success rates cannot.

        Full-size image fetches (not favicons) make the 40x throttle shift
        seconds-scale while every exchange still completes, so the
        success-rate CUSUM stays silent and the timing CUSUM must call the
        scripted throttle onset on the day it happened.
        """
        config = CampaignConfig(
            visits=200,
            include_testbed=False,
            favicons_only=False,
            target_domains=("facebook.com", "youtube.com", "twitter.com"),
            seed=31,
            country_code="DE",
        )
        deployment = EncoreDeployment(longitudinal_world(seed=7), config)
        timeline = PolicyTimeline().throttle(5, "DE", "facebook.com")
        result = deployment.run_longitudinal(
            timeline, LongitudinalConfig(epochs=12, visits_per_epoch=200)
        )
        # Throttled fetches complete: the success-rate detector is blind.
        assert result.events() == []
        # The timing detector sees the slowdown, on the throttled pair only.
        events = result.timing_events()
        assert [
            (e.kind, e.domain, e.country_code, e.change_day) for e in events
        ] == [("throttle-onset", "facebook.com", "DE", 5)]
        assert events[0].detection_lag >= 1
        # Vectorized scan ≡ scalar reference on the real corpus's series.
        series = result.timing_series()
        detector = result.config.timing_detector
        assert detector.detect_events(series) == (
            detector.detect_events_reference(series)
        )
        # The throttle scorecard grades it: one transition, found, no noise.
        report = result.throttle_report()
        assert report.detection_rate == 1.0
        assert report.false_events == []
        assert report.matches[0].change_day_error == 0
        # Retuning the timing detector invalidates the cache (the same
        # contract the success-rate events cache pins).
        default_detector = result.config.timing_detector
        result.config.timing_detector = TimingCusumDetector(threshold=10_000.0)
        assert result.timing_events() == []
        result.config.timing_detector = default_detector
        assert result.timing_events() == events

    def test_epochs_default_covers_timeline_with_trailing_slack(self):
        timeline = PolicyTimeline().onset(9, "DE", "facebook.com")
        config = LongitudinalConfig(trailing_epochs=4)
        assert config.resolved_epochs(timeline) == 14

    def test_empty_timeline_requires_explicit_epochs(self):
        """Regression: an event-free timeline used to silently schedule
        ``1 + trailing_epochs`` epochs instead of failing loudly."""
        empty = PolicyTimeline()
        with pytest.raises(ValueError, match="event-free timeline"):
            LongitudinalConfig().resolved_epochs(empty)
        deployment = longitudinal_deployment(seed=53)
        with pytest.raises(ValueError, match="event-free timeline"):
            LongitudinalEngine(deployment, empty, LongitudinalConfig())
        # An explicit epoch count still works on an empty timeline.
        assert LongitudinalConfig(epochs=7).resolved_epochs(empty) == 7
        result = deployment.run_longitudinal(
            empty, LongitudinalConfig(epochs=2, visits_per_epoch=50)
        )
        assert len(result.epochs) == 2
        assert result.events() == []

    def test_events_cache_keyed_on_detector_tuning(self):
        """Regression: the events cache used to key on store version alone,
        so retuning ``config.detector`` returned the stale previous list."""
        _, result = self.run_deployment(seed=47)
        default_detector = result.config.detector
        default_events = result.events()
        assert default_events
        result.config.detector = CusumChangePointDetector(threshold=10_000.0)
        assert result.events() == []
        result.config.detector = default_detector
        assert result.events() == default_events

    def test_validation(self):
        deployment = longitudinal_deployment(seed=37)
        timeline = PolicyTimeline()
        with pytest.raises(ValueError):
            LongitudinalEngine(deployment, timeline, LongitudinalConfig(days_per_epoch=0))
        with pytest.raises(ValueError):
            LongitudinalEngine(deployment, timeline, LongitudinalConfig(visits_per_epoch=0))
        with pytest.raises(ValueError):
            LongitudinalEngine(deployment, timeline, LongitudinalConfig(epochs=0))


class TestCheckpointedMonitor:
    """The always-on monitor loop: epoch resume + CUSUM checkpointing."""

    ONSET_DAY = TestLongitudinalRun.ONSET_DAY
    OFFSET_DAY = TestLongitudinalRun.OFFSET_DAY
    EPOCHS = TestLongitudinalRun.EPOCHS
    run_deployment = TestLongitudinalRun.run_deployment
    KILL_AFTER = 9

    def test_monitor_matches_stateless_run(self, tmp_path):
        _, stateless = self.run_deployment(seed=41)
        _, monitored = self.run_deployment(
            seed=41, checkpoint_dir=str(tmp_path / "monitor")
        )
        assert monitored.monitor is not None
        assert monitored.monitor.days_processed == self.EPOCHS
        # The incremental per-epoch scan accumulated exactly the cold
        # full-scan events, and events() serves them straight off the state.
        assert monitored.events() == stateless.events()
        assert monitored.day_counts().as_dict() == stateless.day_counts().as_dict()
        assert not any(epoch.resumed for epoch in monitored.epochs)
        assert (tmp_path / "monitor" / LongitudinalEngine.STATE_FILE).is_file()

    def test_killed_monitor_resumes_to_identical_events(self, tmp_path):
        checkpoint = tmp_path / "monitor"
        _, reference = self.run_deployment(
            seed=41, checkpoint_dir=str(tmp_path / "reference")
        )
        # A monitor killed after KILL_AFTER epochs (a shorter horizon stands
        # in for the kill: the checkpoint on disk is what a crash leaves).
        _, killed = self.run_deployment(
            seed=41, epochs=self.KILL_AFTER, checkpoint_dir=str(checkpoint)
        )
        assert killed.monitor.days_processed == self.KILL_AFTER
        # A fresh process: new deployment (same world/campaign seeds), full
        # horizon, same checkpoint directory.
        _, resumed = self.run_deployment(seed=41, checkpoint_dir=str(checkpoint))
        assert [e.resumed for e in resumed.epochs[: self.KILL_AFTER]] == (
            [True] * self.KILL_AFTER
        )
        assert not any(e.resumed for e in resumed.epochs[self.KILL_AFTER:])
        assert resumed.events() == reference.events()
        assert resumed.day_counts().as_dict() == reference.day_counts().as_dict()
        assert resumed.monitor.days_processed == self.EPOCHS
        # The completed epochs' events came from the checkpoint verbatim.
        assert resumed.monitor.events[: len(killed.monitor.events)] == (
            killed.monitor.events
        )

    def test_resume_false_starts_over(self, tmp_path):
        checkpoint = tmp_path / "monitor"
        _, first = self.run_deployment(
            seed=41, epochs=self.KILL_AFTER, checkpoint_dir=str(checkpoint)
        )
        _, restarted = self.run_deployment(
            seed=41, checkpoint_dir=str(checkpoint), resume=False
        )
        # The CUSUM state starts fresh; the epoch campaigns still adopt the
        # completed epochs' rows from their manifests (that is cheap replay,
        # not stale state: the fold + scan cover those rows again).
        assert restarted.monitor.days_processed == self.EPOCHS
        _, stateless = self.run_deployment(seed=41)
        assert restarted.events() == stateless.events()

    def test_adaptive_baselines_seed_and_persist(self, tmp_path):
        _, result = self.run_deployment(
            seed=43, checkpoint_dir=str(tmp_path), adaptive_baselines=True
        )
        baselines = result.monitor.baselines
        assert baselines
        assert all(0.0 < rate <= 1.0 for rate in baselines.values())
        restored = CusumState.load(tmp_path / LongitudinalEngine.STATE_FILE)
        assert restored.baselines == baselines


class TestTimelineReportAttribution:
    def test_missed_transition_cannot_claim_a_later_detection(self):
        """A missed early onset must not absorb the detection of a later one."""
        from repro.analysis.reports import build_timeline_report
        from repro.core.inference import CensorshipEvent

        timeline = (
            PolicyTimeline()
            .onset(5, "DE", "facebook.com")
            .offset(15, "DE", "facebook.com")
            .onset(30, "DE", "facebook.com")
        )
        # Only the day-30 onset (and the day-15 offset) were detected.
        events = [
            CensorshipEvent("facebook.com", "DE", "offset", 15, 16, 1.2, 0.6),
            CensorshipEvent("facebook.com", "DE", "onset", 30, 32, 1.4, 0.7),
        ]
        report = build_timeline_report(events, timeline)
        by_day = {match.day: match for match in report.matches}
        assert not by_day[5].detected
        assert by_day[15].detection_lag == 1
        assert by_day[30].detection_lag == 2
        assert report.mean_detection_lag == 1.5
        assert report.false_events == []


class TestTimelineCensorPlumbing:
    def test_rules_in_world_config_build_censors(self):
        config = WorldConfig(
            seed=3, target_list_total=20, target_list_online=16, origin_site_count=2,
            timeline_rules={"DE": {"facebook.com": "block", "youtube.com": "throttle"}},
        )
        world = World(config)
        censorship = world.censorship_for("DE")
        assert censorship.filters_anything
        assert censorship.would_filter("http://facebook.com/favicon.ico")
        names = [censor.name for censor in censorship.censors]
        assert names == ["de-timeline-block", "de-timeline-throttle"]

    def test_refresh_is_idempotent_and_reversible(self):
        world = longitudinal_world(seed=5)
        world.config.timeline_rules = {"DE": {"facebook.com": "block"}}
        world.refresh_timeline_censors()
        first = list(world.censorship_for("DE").censors)
        world.refresh_timeline_censors()
        assert world.censorship_for("DE").censors == first
        # Swinging the blacklist reuses the same censor object (stable chain).
        world.config.timeline_rules = {"DE": {"twitter.com": "block"}}
        world.refresh_timeline_censors()
        assert world.censorship_for("DE").censors[0] is first[0]
        assert world.censorship_for("DE").would_filter("http://twitter.com/")
        assert not world.censorship_for("DE").would_filter("http://facebook.com/")
        world.config.timeline_rules = {}
        world.refresh_timeline_censors()
        assert not world.censorship_for("DE").filters_anything

    def test_presets_survive_timeline_rules(self):
        world = longitudinal_world(seed=9)
        preset = list(world.censorship_for("CN").censors)
        world.config.timeline_rules = {"CN": {"example.org": "block"}}
        world.refresh_timeline_censors()
        assert world.censorship_for("CN").censors[: len(preset)] == preset
        world.config.timeline_rules = {}
        world.refresh_timeline_censors()
        assert world.censorship_for("CN").censors == preset
