"""Tests for the headless browser (Target Fetcher substrate) and search engine."""

import numpy as np
import pytest

from repro.web.headless import HeadlessBrowser
from repro.web.resources import ContentType, Resource
from repro.web.search import SearchEngine
from repro.web.server import WebUniverse
from repro.web.sites import Site, SiteGenerator
from repro.web.url import URL, URLPattern


@pytest.fixture(scope="module")
def universe():
    universe = WebUniverse()
    generator = SiteGenerator(rng=np.random.default_rng(3))
    for domain in ("alpha.org", "beta.org"):
        universe.add_site(generator.generate_site(domain))
    return universe


class TestHeadlessBrowser:
    def test_render_records_page_and_embeds(self, universe):
        headless = HeadlessBrowser(universe, rng=1)
        site = universe.site("alpha.org")
        page_url = site.page_urls[0]
        har = headless.render(page_url)
        assert har.ok
        page = site.lookup(page_url)
        # One entry for the page itself plus one per embedded resource.
        assert len(har.entries) == 1 + len(page.embedded_urls)

    def test_render_unknown_host_yields_failed_har(self, universe):
        headless = HeadlessBrowser(universe, rng=1)
        har = headless.render("http://unknown-host.net/")
        assert not har.ok
        assert har.entries == []

    def test_render_404_yields_failed_har(self, universe):
        headless = HeadlessBrowser(universe, rng=1)
        har = headless.render("http://alpha.org/definitely-missing.html")
        assert har.page_status == 404
        assert not har.ok

    def test_render_records_side_effect_flag(self):
        universe = WebUniverse()
        site = Site("effects.org")
        site.add(
            Resource(
                URL.parse("http://effects.org/buy"),
                ContentType.HTML,
                1000,
                has_side_effects=True,
            )
        )
        universe.add_site(site)
        har = HeadlessBrowser(universe, rng=0).render("http://effects.org/buy")
        assert har.page_has_side_effects

    def test_render_many_preserves_order(self, universe):
        headless = HeadlessBrowser(universe, rng=1)
        urls = universe.site("alpha.org").page_urls[:3]
        hars = headless.render_many(urls)
        assert [str(h.page_url) for h in hars] == [str(u) for u in urls]

    def test_times_are_positive_and_grow_with_size(self, universe):
        headless = HeadlessBrowser(universe, rng=1)
        small = headless._fetch_time_ms(100)
        large = headless._fetch_time_ms(10_000_000)
        assert small > 0
        assert large > small


class TestSearchEngine:
    def test_site_search_returns_only_pages_of_domain(self, universe):
        engine = SearchEngine(universe, rng=5)
        results = engine.site_search("alpha.org", limit=20)
        assert results
        assert all(url.host.endswith("alpha.org") for url in results)
        site = universe.site("alpha.org")
        assert all(site.lookup(url).is_page for url in results)

    def test_home_page_ranks_first(self, universe):
        engine = SearchEngine(universe, rng=5)
        results = engine.site_search("alpha.org")
        assert results[0].path == "/"

    def test_limit_respected(self, universe):
        engine = SearchEngine(universe, rng=5)
        assert len(engine.site_search("alpha.org", limit=5)) == 5

    def test_unknown_domain_returns_empty(self, universe):
        engine = SearchEngine(universe, rng=5)
        assert engine.site_search("unknown.net") == []
        assert not engine.is_indexed("unknown.net")

    def test_expand_exact_pattern_is_identity(self, universe):
        engine = SearchEngine(universe, rng=5)
        pattern = URLPattern.exact("http://alpha.org/some/page.html")
        assert [str(u) for u in engine.expand_pattern(pattern)] == ["http://alpha.org/some/page.html"]

    def test_expand_domain_pattern_capped_at_limit(self, universe):
        engine = SearchEngine(universe, rng=5)
        pattern = URLPattern.domain("alpha.org")
        urls = engine.expand_pattern(pattern, limit=10)
        assert 0 < len(urls) <= 10
        assert all(pattern.matches(u) for u in urls)
