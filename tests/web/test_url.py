"""Tests for URL, Origin, and URLPattern."""

import pytest

from repro.web.url import URL, Origin, URLError, URLPattern


class TestURLParsing:
    def test_parse_basic_http_url(self):
        url = URL.parse("http://example.com/path/page.html")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.port == 80
        assert url.path == "/path/page.html"
        assert url.query == ""

    def test_parse_https_default_port(self):
        url = URL.parse("https://example.com/")
        assert url.port == 443

    def test_parse_explicit_port(self):
        url = URL.parse("http://example.com:8080/x")
        assert url.port == 8080

    def test_parse_scheme_relative(self):
        url = URL.parse("//censored.com/favicon.ico")
        assert url.scheme == "http"
        assert url.host == "censored.com"
        assert url.path == "/favicon.ico"

    def test_parse_scheme_relative_uses_default_scheme(self):
        url = URL.parse("//censored.com/x", default_scheme="https")
        assert url.scheme == "https"
        assert url.port == 443

    def test_parse_bare_host_gets_root_path(self):
        url = URL.parse("http://example.com")
        assert url.path == "/"

    def test_parse_query_string(self):
        url = URL.parse("http://example.com/search?q=censorship")
        assert url.path == "/search"
        assert url.query == "q=censorship"

    def test_parse_drops_fragment(self):
        url = URL.parse("http://example.com/page#section")
        assert url.path == "/page"

    def test_parse_lowercases_host_and_scheme(self):
        url = URL.parse("HTTP://Example.COM/Path")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.path == "/Path"

    def test_parse_no_scheme_defaults_to_http(self):
        url = URL.parse("example.com/page")
        assert url.scheme == "http"
        assert url.host == "example.com"

    @pytest.mark.parametrize(
        "bad",
        ["", "ftp://example.com/", "http://", "http://example.com:notaport/", "http://.bad.com/"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(URLError):
            URL.parse(bad)

    def test_str_roundtrip(self):
        text = "http://example.com/a/b?x=1"
        assert str(URL.parse(text)) == text

    def test_str_omits_default_port(self):
        assert str(URL.parse("http://example.com:80/")) == "http://example.com/"

    def test_str_keeps_nonstandard_port(self):
        assert "8080" in str(URL.parse("http://example.com:8080/"))


class TestOrigin:
    def test_origin_of_url(self):
        url = URL.parse("https://sub.example.com/page")
        assert url.origin == Origin("https", "sub.example.com", 443)

    def test_same_origin_true(self):
        a = URL.parse("http://example.com/a").origin
        b = URL.parse("http://example.com/b").origin
        assert a.same_origin(b)

    def test_different_host_is_cross_origin(self):
        a = URL.parse("http://example.com/")
        b = URL.parse("http://other.com/")
        assert a.is_cross_origin(b)

    def test_different_scheme_is_cross_origin(self):
        a = URL.parse("http://example.com/")
        b = URL.parse("https://example.com/")
        assert a.is_cross_origin(b)

    def test_different_port_is_cross_origin(self):
        a = URL.parse("http://example.com/")
        b = URL.parse("http://example.com:8080/")
        assert a.is_cross_origin(b)

    def test_subdomain_is_cross_origin(self):
        a = URL.parse("http://example.com/")
        b = URL.parse("http://www.example.com/")
        assert a.is_cross_origin(b)


class TestURLHelpers:
    def test_domain_collapses_subdomains(self):
        assert URL.parse("http://a.b.example.com/").domain == "example.com"

    def test_domain_of_two_label_host(self):
        assert URL.parse("http://example.com/").domain == "example.com"

    def test_with_path(self):
        url = URL.parse("http://example.com/old")
        assert url.with_path("/new").path == "/new"
        assert url.with_path("new").path == "/new"

    def test_with_path_preserves_host(self):
        url = URL.parse("http://example.com:8080/old")
        new = url.with_path("/x")
        assert new.host == "example.com"
        assert new.port == 8080


class TestURLPattern:
    def test_exact_pattern_matches_only_that_url(self):
        pattern = URLPattern.exact("http://example.com/page")
        assert pattern.matches("http://example.com/page")
        assert not pattern.matches("http://example.com/other")

    def test_domain_pattern_matches_subdomains(self):
        pattern = URLPattern.domain("example.com")
        assert pattern.matches("http://example.com/anything")
        assert pattern.matches("http://cdn.example.com/x")
        assert not pattern.matches("http://notexample.com/x")

    def test_domain_pattern_does_not_match_suffix_lookalike(self):
        pattern = URLPattern.domain("example.com")
        assert not pattern.matches("http://evilexample.com/")

    def test_prefix_pattern(self):
        pattern = URLPattern.prefix("http://example.com/blog/")
        assert pattern.matches("http://example.com/blog/post-1")
        assert not pattern.matches("http://example.com/news/post-1")

    def test_trivial_only_for_exact(self):
        assert URLPattern.exact("http://example.com/p").is_trivial()
        assert not URLPattern.domain("example.com").is_trivial()
        assert not URLPattern.prefix("http://example.com/blog/").is_trivial()

    def test_anchor_domain(self):
        assert URLPattern.domain("example.com").anchor_domain == "example.com"
        assert URLPattern.exact("http://foo.com/x").anchor_domain == "foo.com"
        assert URLPattern.prefix("http://bar.com/a/").anchor_domain == "bar.com"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            URLPattern("glob", "*.example.com")

    def test_category_is_preserved(self):
        pattern = URLPattern.domain("example.com", category="press_freedom")
        assert pattern.category == "press_freedom"
