"""Tests for the Web resource model."""

import pytest

from repro.web.resources import (
    ContentType,
    KILOBYTE,
    Resource,
    SINGLE_PACKET_BYTES,
    cacheable_images,
    embedded_resources,
    total_page_weight,
)
from repro.web.url import URL


def image(path="/img.png", size=500, cacheable=False):
    return Resource(
        url=URL.parse(f"http://example.com{path}"),
        content_type=ContentType.IMAGE,
        size_bytes=size,
        cacheable=cacheable,
    )


class TestResourceBasics:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Resource(URL.parse("http://e.com/x"), ContentType.IMAGE, -1)

    def test_cacheable_without_ttl_gets_default_ttl(self):
        resource = Resource(URL.parse("http://e.com/x.png"), ContentType.IMAGE, 100, cacheable=True)
        assert resource.cache_ttl_s > 0

    def test_only_pages_may_embed(self):
        with pytest.raises(ValueError):
            Resource(
                URL.parse("http://e.com/x.png"),
                ContentType.IMAGE,
                100,
                embedded_urls=(URL.parse("http://e.com/y.png"),),
            )

    def test_type_predicates(self):
        assert image().is_image
        assert not image().is_page
        sheet = Resource(URL.parse("http://e.com/s.css"), ContentType.STYLESHEET, 100)
        assert sheet.is_stylesheet
        script = Resource(URL.parse("http://e.com/s.js"), ContentType.SCRIPT, 100)
        assert script.is_script

    def test_is_small_image_respects_limit(self):
        assert image(size=KILOBYTE).is_small_image()
        assert not image(size=KILOBYTE + 1).is_small_image()
        assert image(size=4 * KILOBYTE).is_small_image(limit_bytes=5 * KILOBYTE)

    def test_single_packet(self):
        assert image(size=SINGLE_PACKET_BYTES).fits_single_packet()
        assert not image(size=SINGLE_PACKET_BYTES + 1).fits_single_packet()

    def test_heavy_media(self):
        video = Resource(URL.parse("http://e.com/v.mp4"), ContentType.VIDEO, 10_000)
        flash = Resource(URL.parse("http://e.com/f.swf"), ContentType.FLASH, 10_000)
        assert video.is_heavy_media
        assert flash.is_heavy_media
        assert not image().is_heavy_media

    def test_describe_mentions_type_and_size(self):
        text = image(size=512, cacheable=True).describe()
        assert "image" in text
        assert "512" in text
        assert "cacheable" in text


class TestPageHelpers:
    def make_page(self):
        img_a = image("/a.png", 1000, cacheable=True)
        img_b = image("/b.png", 2000, cacheable=False)
        page = Resource(
            url=URL.parse("http://example.com/index.html"),
            content_type=ContentType.HTML,
            size_bytes=5000,
            embedded_urls=(img_a.url, img_b.url, URL.parse("http://example.com/missing.png")),
        )
        resources = {str(img_a.url): img_a, str(img_b.url): img_b}
        return page, resources.get, [img_a, img_b]

    def test_total_page_weight_sums_known_resources(self):
        page, resolver, _ = self.make_page()
        assert total_page_weight(page, lambda u: resolver(str(u))) == 5000 + 1000 + 2000

    def test_total_page_weight_requires_page(self):
        with pytest.raises(ValueError):
            total_page_weight(image(), lambda u: None)

    def test_embedded_resources_skips_unknown(self):
        page, resolver, known = self.make_page()
        found = embedded_resources(page, lambda u: resolver(str(u)))
        assert found == known

    def test_cacheable_images_filter(self):
        _, _, known = self.make_page()
        result = cacheable_images(known)
        assert len(result) == 1
        assert result[0].cacheable


class TestContentType:
    def test_is_page_only_for_html(self):
        assert ContentType.HTML.is_page
        assert not ContentType.IMAGE.is_page

    def test_renderable_media(self):
        assert ContentType.IMAGE.is_renderable_media
        assert not ContentType.SCRIPT.is_renderable_media
