"""Tests for the simulated Web server and universe."""

import pytest

from repro.web.resources import ContentType, Resource
from repro.web.server import HTTPResponse, WebServer, WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


def make_site(domain="example.com"):
    site = Site(domain)
    site.add(Resource(URL.parse(f"http://{domain}/favicon.ico"), ContentType.IMAGE, 400,
                      cacheable=True, cache_ttl_s=3600))
    site.add(Resource(URL.parse(f"http://{domain}/index.html"), ContentType.HTML, 2000))
    return site


class TestHTTPResponse:
    def test_ok_for_2xx(self):
        assert HTTPResponse(200, ContentType.HTML, 10).ok
        assert not HTTPResponse(404, ContentType.HTML, 10).ok
        assert not HTTPResponse(503, ContentType.HTML, 10).ok

    def test_block_page_flag(self):
        response = HTTPResponse.block_page()
        assert response.ok
        assert response.is_block_page
        assert response.content_type is ContentType.HTML

    def test_for_resource_copies_headers(self):
        resource = Resource(
            URL.parse("http://e.com/x.js"), ContentType.SCRIPT, 123, cacheable=True,
            cache_ttl_s=60, nosniff=True,
        )
        response = HTTPResponse.for_resource(resource)
        assert response.status == 200
        assert response.size_bytes == 123
        assert response.cacheable
        assert response.nosniff
        assert response.resource is resource


class TestWebServer:
    def test_serves_hosted_resource(self):
        server = WebServer("1.2.3.4", [make_site()])
        response = server.handle(URL.parse("http://example.com/favicon.ico"))
        assert response.ok
        assert response.content_type is ContentType.IMAGE

    def test_404_for_unknown_path(self):
        server = WebServer("1.2.3.4", [make_site()])
        assert server.handle(URL.parse("http://example.com/nope")).status == 404

    def test_404_for_unknown_host(self):
        server = WebServer("1.2.3.4", [make_site()])
        assert server.handle(URL.parse("http://other.com/favicon.ico")).status == 404

    def test_offline_server_returns_503(self):
        server = WebServer("1.2.3.4", [make_site()])
        server.online = False
        assert server.handle(URL.parse("http://example.com/favicon.ico")).status == 503

    def test_subdomain_served_by_parent_site(self):
        site = make_site()
        site.add(Resource(URL.parse("http://cdn.example.com/a.png"), ContentType.IMAGE, 100))
        server = WebServer("1.2.3.4", [site])
        assert server.handle(URL.parse("http://cdn.example.com/a.png")).ok


class TestWebUniverse:
    def test_add_and_lookup_site(self):
        universe = WebUniverse()
        universe.add_site(make_site())
        assert "example.com" in universe
        assert universe.site("example.com") is not None
        assert universe.site("www.example.com") is not None
        assert universe.site("unknown.com") is None

    def test_duplicate_domain_rejected(self):
        universe = WebUniverse()
        universe.add_site(make_site())
        with pytest.raises(ValueError):
            universe.add_site(make_site())

    def test_each_site_gets_an_ip(self):
        universe = WebUniverse()
        universe.add_site(make_site("a.com"))
        universe.add_site(make_site("b.com"))
        ip_a = universe.ip_for_host("a.com")
        ip_b = universe.ip_for_host("b.com")
        assert ip_a and ip_b and ip_a != ip_b

    def test_server_for_ip_roundtrip(self):
        universe = WebUniverse()
        universe.add_site(make_site())
        ip = universe.ip_for_host("example.com")
        server = universe.server_for_ip(ip)
        assert server is not None
        assert server.handle(URL.parse("http://example.com/index.html")).ok

    def test_lookup_resource(self):
        universe = WebUniverse()
        universe.add_site(make_site())
        resource = universe.lookup_resource(URL.parse("http://example.com/favicon.ico"))
        assert resource is not None
        assert resource.is_image

    def test_offline_and_online_toggle(self):
        universe = WebUniverse()
        universe.add_site(make_site())
        universe.take_offline("example.com")
        server = universe.server_for_host("example.com")
        assert not server.online
        universe.bring_online("example.com")
        assert server.online

    def test_take_offline_unknown_domain_raises(self):
        universe = WebUniverse()
        with pytest.raises(KeyError):
            universe.take_offline("nope.com")

    def test_len_and_iter(self):
        universe = WebUniverse()
        universe.add_site(make_site("a.com"))
        universe.add_site(make_site("b.com"))
        assert len(universe) == 2
        assert {site.domain for site in universe} == {"a.com", "b.com"}

    def test_explicit_ip_shares_server(self):
        universe = WebUniverse()
        universe.add_site(make_site("a.com"), ip_address="9.9.9.9")
        universe.add_site(make_site("b.com"), ip_address="9.9.9.9")
        assert universe.ip_for_host("a.com") == universe.ip_for_host("b.com") == "9.9.9.9"
