"""Tests for sites and the synthetic site generator."""

import numpy as np
import pytest

from repro.web.resources import ContentType, KILOBYTE, Resource
from repro.web.sites import Site, SiteGenerator
from repro.web.url import URL


class TestSite:
    def test_add_and_lookup(self):
        site = Site("example.com")
        resource = Resource(URL.parse("http://example.com/x.png"), ContentType.IMAGE, 100)
        site.add(resource)
        assert site.lookup("http://example.com/x.png") is resource
        assert site.lookup("http://example.com/missing") is None

    def test_add_rejects_foreign_domain(self):
        site = Site("example.com")
        with pytest.raises(ValueError):
            site.add(Resource(URL.parse("http://other.com/x.png"), ContentType.IMAGE, 100))

    def test_add_accepts_subdomain(self):
        site = Site("example.com")
        resource = Resource(URL.parse("http://cdn.example.com/x.png"), ContentType.IMAGE, 100)
        site.add(resource)
        assert site.lookup(resource.url) is resource

    def test_pages_and_images_views(self):
        site = Site("example.com")
        site.add(Resource(URL.parse("http://example.com/a.png"), ContentType.IMAGE, 100))
        site.add(Resource(URL.parse("http://example.com/i.html"), ContentType.HTML, 100))
        assert len(site.images) == 1
        assert len(site.pages) == 1
        assert site.page_urls[0].path == "/i.html"

    def test_favicon_url_only_when_hosted(self):
        site = Site("example.com")
        assert site.favicon_url is None
        site.add(Resource(URL.parse("http://example.com/favicon.ico"), ContentType.IMAGE, 400))
        assert site.favicon_url is not None

    def test_images_at_most(self):
        site = Site("example.com")
        site.add(Resource(URL.parse("http://example.com/small.png"), ContentType.IMAGE, 500))
        site.add(Resource(URL.parse("http://example.com/big.png"), ContentType.IMAGE, 50_000))
        assert len(site.images_at_most(KILOBYTE)) == 1


class TestSiteGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        generator = SiteGenerator(rng=np.random.default_rng(42))
        domains = {f"site-{i:02d}.org": "human_rights" for i in range(40)}
        domains["facebook.com"] = "social_media"
        return generator.generate_universe(domains)

    def test_generates_every_domain(self, generated):
        assert len(generated) == 41

    def test_every_site_has_pages(self, generated):
        for site in generated.values():
            assert len(site.pages) >= 1

    def test_home_page_exists(self, generated):
        for site in generated.values():
            assert any(url.path == "/" for url in site.page_urls)

    def test_embedded_urls_resolve_on_site(self, generated):
        site = next(iter(generated.values()))
        for page in site.pages:
            for url in page.embedded_urls:
                assert site.lookup(url) is not None

    def test_social_media_sites_have_favicon(self, generated):
        facebook = generated["facebook.com"]
        assert facebook.favicon_url is not None
        favicon = facebook.lookup(facebook.favicon_url)
        assert favicon.size_bytes <= KILOBYTE
        assert favicon.cacheable

    def test_social_media_sites_are_image_rich(self, generated):
        assert len(generated["facebook.com"].images) >= 100

    def test_roughly_a_third_of_domains_lack_images(self, generated):
        ordinary = [s for d, s in generated.items() if d != "facebook.com"]
        without_images = sum(1 for s in ordinary if not s.images)
        fraction = without_images / len(ordinary)
        assert 0.05 < fraction < 0.6

    def test_deterministic_given_seed(self):
        a = SiteGenerator(rng=np.random.default_rng(7)).generate_site("x.org")
        b = SiteGenerator(rng=np.random.default_rng(7)).generate_site("x.org")
        assert sorted(a.resources) == sorted(b.resources)
        assert [r.size_bytes for r in a.resources.values()] == [
            r.size_bytes for r in b.resources.values()
        ]

    def test_different_seeds_differ(self):
        a = SiteGenerator(rng=np.random.default_rng(1)).generate_site("x.org")
        b = SiteGenerator(rng=np.random.default_rng(2)).generate_site("x.org")
        assert sorted(a.resources) != sorted(b.resources) or [
            r.size_bytes for r in a.resources.values()
        ] != [r.size_bytes for r in b.resources.values()]

    def test_profile_forcing_via_argument(self):
        generator = SiteGenerator(rng=np.random.default_rng(5))
        profile = generator.sample_profile("forced.org")
        profile.hosts_images = False
        profile.image_pool_size = 0
        profile.has_favicon = False
        site = generator.generate_site("forced.org", profile=profile)
        assert site.images == []
