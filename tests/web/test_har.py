"""Tests for the HAR model."""

from repro.web.har import HAR, HAREntry, merge_domain_images
from repro.web.resources import ContentType, Resource
from repro.web.url import URL


def entry(path="/a.png", content_type=ContentType.IMAGE, size=100, cacheable=False, status=200):
    return HAREntry(
        url=URL.parse(f"http://example.com{path}"),
        status=status,
        content_type=content_type,
        size_bytes=size,
        time_ms=10.0,
        cacheable=cacheable,
    )


class TestHAREntry:
    def test_from_resource(self):
        resource = Resource(
            URL.parse("http://e.com/x.png"), ContentType.IMAGE, 321, cacheable=True, cache_ttl_s=60
        )
        har_entry = HAREntry.from_resource(resource, time_ms=12.5)
        assert har_entry.status == 200
        assert har_entry.size_bytes == 321
        assert har_entry.cacheable
        assert har_entry.time_ms == 12.5

    def test_predicates(self):
        assert entry().is_image
        assert not entry(content_type=ContentType.SCRIPT).is_image
        assert entry(cacheable=True).is_cacheable_image
        assert not entry(cacheable=False).is_cacheable_image
        assert entry().ok
        assert not entry(status=404).ok


class TestHAR:
    def make_har(self):
        har = HAR(page_url=URL.parse("http://example.com/index.html"))
        har.add(entry("/index.html", ContentType.HTML, 5000))
        har.add(entry("/a.png", ContentType.IMAGE, 800, cacheable=True))
        har.add(entry("/b.png", ContentType.IMAGE, 9000, cacheable=False))
        har.add(entry("/c.css", ContentType.STYLESHEET, 1500, cacheable=True))
        return har

    def test_total_size_is_sum_of_entries(self):
        assert self.make_har().total_size_bytes == 5000 + 800 + 9000 + 1500

    def test_total_time(self):
        assert self.make_har().total_time_ms == 40.0

    def test_images_and_cacheable_images(self):
        har = self.make_har()
        assert len(har.images) == 2
        assert len(har.cacheable_images) == 1

    def test_images_at_most(self):
        assert len(self.make_har().images_at_most(1024)) == 1

    def test_entries_of_type(self):
        assert len(self.make_har().entries_of_type(ContentType.STYLESHEET)) == 1

    def test_heavy_media_detection(self):
        har = self.make_har()
        assert not har.loads_heavy_media()
        har.add(entry("/v.mp4", ContentType.VIDEO, 1_000_000))
        assert har.loads_heavy_media()

    def test_ok_reflects_page_status(self):
        assert self.make_har().ok
        failed = HAR(page_url=URL.parse("http://example.com/x"), page_status=404)
        assert not failed.ok


class TestMergeDomainImages:
    def test_duplicate_images_count_once(self):
        har_a = HAR(page_url=URL.parse("http://example.com/a"))
        har_b = HAR(page_url=URL.parse("http://example.com/b"))
        shared = entry("/icon.png")
        har_a.add(shared)
        har_b.add(shared)
        har_b.add(entry("/other.png"))
        merged = merge_domain_images([har_a, har_b])
        assert len(merged) == 2

    def test_non_images_excluded(self):
        har = HAR(page_url=URL.parse("http://example.com/a"))
        har.add(entry("/s.css", ContentType.STYLESHEET))
        assert merge_domain_images([har]) == {}
